#include "knmatch/storage/ingest.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "knmatch/obs/catalog.h"

namespace knmatch {

LiveColumnIndex::LiveColumnIndex(const Dataset& base, DiskSimulator* disk)
    : LiveColumnIndex(base, disk, Config()) {}

LiveColumnIndex::LiveColumnIndex(const Dataset& base, DiskSimulator* disk,
                                 Config config)
    : disk_(disk),
      config_(config),
      wal_(WriteAheadLog::Config{
          /*group_commit_window=*/config.group_commit_window}),
      file_(disk) {
  dims_ = base.dims();
  base_size_ = base.size();
  base_flat_.resize(base_size_ * dims_);
  for (size_t pid = 0; pid < base_size_; ++pid) {
    const auto point = base.point(static_cast<PointId>(pid));
    std::copy(point.begin(), point.end(),
              base_flat_.begin() + static_cast<ptrdiff_t>(pid * dims_));
  }

  // Bulk load one tree per dimension, exactly like BTreeColumns.
  std::vector<ColumnEntry> column(base_size_);
  trees_.reserve(dims_);
  for (size_t dim = 0; dim < dims_; ++dim) {
    for (size_t i = 0; i < base_size_; ++i) {
      column[i] =
          ColumnEntry{base.at(static_cast<PointId>(i), dim),
                      static_cast<PointId>(i)};
    }
    std::sort(column.begin(), column.end(),
              [](const ColumnEntry& a, const ColumnEntry& b) {
                if (a.value != b.value) return a.value < b.value;
                return a.pid < b.pid;
              });
    auto tree = std::make_unique<BPlusTree>(disk_);
    tree->EnableReclamation();
    tree->BulkLoad(column);
    tree->EnableDirtyTracking();
    trees_.push_back(std::move(tree));
  }
  live_count_ = base_size_;
  pid_bound_ = base_size_;

  // Initial full checkpoint: every node + meta page durable before the
  // first transaction, so recovery always finds a complete base image.
  for (size_t dim = 0; dim < dims_; ++dim) {
    for (uint32_t slot = 0;
         slot < static_cast<uint32_t>(trees_[dim]->num_nodes()); ++slot) {
      dirty_since_checkpoint_.insert(NodeKey(dim, slot));
    }
    dirty_since_checkpoint_.insert(MetaKey(dim));
  }
  Status s = CheckpointInternal(/*during_recovery=*/true);
  assert(s.ok() && "initial checkpoint cannot fail without an injector");
  (void)s;
  PublishSnapshot();
}

size_t LiveColumnIndex::live_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_ == nullptr ? 0 : snapshot_->size;
}

uint64_t LiveColumnIndex::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

std::shared_ptr<const LiveColumnIndex::ColumnSnapshot>
LiveColumnIndex::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

size_t LiveColumnIndex::free_slots() const {
  size_t total = 0;
  for (const auto& tree : trees_) total += tree->free_slots();
  return total;
}

Result<std::vector<Value>> LiveColumnIndex::CoordsOf(PointId pid) const {
  auto it = inserted_.find(pid);
  if (it != inserted_.end()) return it->second;
  if (pid < base_size_ && !erased_.contains(pid)) {
    const auto at = base_flat_.begin() + static_cast<ptrdiff_t>(pid * dims_);
    return std::vector<Value>(at, at + static_cast<ptrdiff_t>(dims_));
  }
  return Status::NotFound("point " + std::to_string(pid) + " is not live");
}

std::vector<PointId> LiveColumnIndex::LivePids() const {
  std::vector<PointId> pids;
  pids.reserve(live_count_);
  for (size_t pid = 0; pid < base_size_; ++pid) {
    const PointId p = static_cast<PointId>(pid);
    if (!erased_.contains(p) && !inserted_.contains(p)) pids.push_back(p);
  }
  for (const auto& [pid, coords] : inserted_) pids.push_back(pid);
  std::sort(pids.begin(), pids.end());
  return pids;
}

std::vector<ColumnEntry> LiveColumnIndex::CommittedColumn(
    size_t dim) const {
  // Committed = applied minus pending; rebuild from base + committed
  // ops so the column is exactly what a quiesced bulk load would hold.
  std::unordered_map<PointId, Value> live;
  live.reserve(base_size_ + ops_tail_.size());
  for (size_t pid = 0; pid < base_size_; ++pid) {
    live.emplace(static_cast<PointId>(pid), base_flat_[pid * dims_ + dim]);
  }
  for (const RowOp& op : ops_tail_) {
    if (op.insert) {
      live[op.pid] = op.coords[dim];
    } else {
      live.erase(op.pid);
    }
  }
  std::vector<ColumnEntry> column;
  column.reserve(live.size());
  for (const auto& [pid, value] : live) {
    column.push_back(ColumnEntry{value, pid});
  }
  std::sort(column.begin(), column.end(),
            [](const ColumnEntry& a, const ColumnEntry& b) {
              if (a.value != b.value) return a.value < b.value;
              return a.pid < b.pid;
            });
  return column;
}

bool LiveColumnIndex::ShouldCrash(FaultInjector::CrashPoint point) {
  return injector_ != nullptr && injector_->ShouldCrash(point);
}

Status LiveColumnIndex::Crashed(const char* where) {
  return Status::FailedPrecondition(
      std::string("live index crashed; Recover() before ") + where);
}

Status LiveColumnIndex::Insert(PointId pid, std::span<const Value> coords) {
  if (crashed_) return Crashed("Insert");
  if (coords.size() != dims_) {
    return Status::InvalidArgument("coordinate count mismatch");
  }
  const bool live = inserted_.contains(pid) ||
                    (pid < base_size_ && !erased_.contains(pid));
  if (live) {
    return Status::InvalidArgument("point " + std::to_string(pid) +
                                   " is already live");
  }
  for (auto& tree : trees_) tree->BeginPendingNotifications();
  for (size_t dim = 0; dim < dims_; ++dim) {
    Status s = trees_[dim]->Insert(ColumnEntry{coords[dim], pid});
    if (!s.ok()) {
      // Failstop: earlier dimensions are already mutated in memory and
      // nothing reached the WAL — exactly a crash before the commit.
      crashed_ = true;
      return s;
    }
  }
  inserted_[pid] = std::vector<Value>(coords.begin(), coords.end());
  erased_.erase(pid);
  ++live_count_;
  pid_bound_ = std::max<size_t>(pid_bound_, static_cast<size_t>(pid) + 1);
  RowOp op;
  op.insert = true;
  op.pid = pid;
  op.coords.assign(coords.begin(), coords.end());
  return LogAndMaybeSync(std::move(op));
}

Result<bool> LiveColumnIndex::Erase(PointId pid) {
  if (crashed_) return Crashed("Erase");
  auto coords = CoordsOf(pid);
  if (!coords.ok()) return false;
  for (auto& tree : trees_) tree->BeginPendingNotifications();
  for (size_t dim = 0; dim < dims_; ++dim) {
    auto found =
        trees_[dim]->Erase(ColumnEntry{coords.value()[dim], pid});
    if (!found.ok() || !found.value()) {
      // A live point must be present in every tree; anything else is
      // an unreadable page or a cross-dimension inconsistency.
      crashed_ = true;
      return found.ok() ? Status::Internal(
                              "live point missing from dimension tree")
                        : found.status();
    }
  }
  inserted_.erase(pid);
  if (pid < base_size_) erased_.insert(pid);
  --live_count_;
  RowOp op;
  op.insert = false;
  op.pid = pid;
  op.coords = std::move(coords.value());
  Status s = LogAndMaybeSync(std::move(op));
  if (!s.ok()) return s;
  return true;
}

Status LiveColumnIndex::LogAndMaybeSync(RowOp op) {
  const uint64_t txn = wal_.Begin();
  op.seq = next_op_seq_++;
  for (size_t dim = 0; dim < dims_; ++dim) {
    for (const uint32_t slot : trees_[dim]->TakeDirty()) {
      const uint64_t key = NodeKey(dim, slot);
      dirty_since_checkpoint_.insert(key);
      wal_.AppendPageImage(txn, key, trees_[dim]->SerializeNode(slot));
    }
    // The meta page (size, root, free list) changes on every op.
    const uint64_t meta_key = MetaKey(dim);
    dirty_since_checkpoint_.insert(meta_key);
    wal_.AppendPageImage(txn, meta_key, trees_[dim]->SerializeMeta());
  }
  wal_.AppendRow(op.insert ? WriteAheadLog::RecordType::kRowInsert
                           : WriteAheadLog::RecordType::kRowErase,
                 txn, SerializeOp(op));
  if (ShouldCrash(FaultInjector::CrashPoint::kAfterWalAppend)) {
    wal_.LoseVolatileTail();
    crashed_ = true;
    return Status::Unavailable("simulated crash after WAL append");
  }
  const WriteAheadLog::CommitTicket ticket = wal_.AppendCommit(txn);
  if (ShouldCrash(FaultInjector::CrashPoint::kAfterCommitAppend)) {
    wal_.LoseVolatileTail();
    crashed_ = true;
    return Status::Unavailable(
        "simulated crash after commit append, before fsync");
  }
  pending_.push_back(std::move(op));
  obs::Cat().ingest_txns->Add();
  if (ticket.group_full) return SyncGroup();
  return Status::OK();
}

Status LiveColumnIndex::Flush() {
  if (crashed_) return Crashed("Flush");
  return SyncGroup();
}

Status LiveColumnIndex::SyncGroup() {
  if (pending_.empty() && wal_.pending_commits() == 0) return Status::OK();
  if (ShouldCrash(FaultInjector::CrashPoint::kMidFsync)) {
    const WriteAheadLog::Stats st = wal_.stats();
    const size_t tail = st.log_bytes - st.durable_bytes;
    // All but the final CRC word landed: the last record is torn and
    // its transaction must be discarded by recovery.
    wal_.SyncPartial(tail > sizeof(uint32_t) ? tail - sizeof(uint32_t)
                                             : tail / 2);
    wal_.LoseVolatileTail();
    crashed_ = true;
    return Status::Unavailable("simulated crash mid-fsync");
  }
  wal_.Sync();
  if (ShouldCrash(FaultInjector::CrashPoint::kAfterFsync)) {
    // Durable but unpublished: recovery must land on the post state.
    crashed_ = true;
    return Status::Unavailable("simulated crash after fsync");
  }
  Publish();
  return Status::OK();
}

void LiveColumnIndex::Publish() {
  for (auto& tree : trees_) tree->CommitPendingNotifications();
  std::vector<RowOp> batch = std::move(pending_);
  pending_.clear();
  for (RowOp& op : batch) ops_tail_.push_back(op);
  PublishSnapshot();
  if (commit_callback_ && !batch.empty()) commit_callback_(batch);
}

void LiveColumnIndex::PublishSnapshot() {
  auto snap = std::make_shared<ColumnSnapshot>();
  snap->trees.reserve(dims_);
  for (auto& tree : trees_) snap->trees.push_back(tree->CreateSnapshot());
  snap->size = live_count_;
  snap->pid_bound = pid_bound_;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->epoch = ++epoch_;
    snapshot_ = std::move(snap);
    obs::Cat().snapshot_epoch->Set(static_cast<int64_t>(epoch_));
  }
  obs::Cat().ingest_free_slots->Set(static_cast<int64_t>(free_slots()));
}

Status LiveColumnIndex::FlushPage(uint64_t key,
                                  std::span<const std::byte> image,
                                  bool during_recovery) {
  std::vector<std::byte> payload;
  payload.reserve(sizeof(uint64_t) + image.size());
  PutScalar<uint64_t>(&payload, key);
  payload.insert(payload.end(), image.begin(), image.end());
  assert(payload.size() <= file_.payload_capacity() &&
         "page image outgrew the checkpoint file's page size");

  const auto it = page_index_.find(key);
  if (!during_recovery &&
      ShouldCrash(FaultInjector::CrashPoint::kMidPageFlush)) {
    // The write tears: the stored frame gets only a prefix of the new
    // image and fails its CRC. Recovery must restore this page from
    // the WAL (whose records for it are still untruncated).
    const size_t index =
        it == page_index_.end() ? file_.num_pages() : it->second;
    file_.WritePageTorn(index, payload,
                        sizeof(uint32_t) + payload.size() / 2);
    if (it == page_index_.end()) page_index_[key] = index;
    crashed_ = true;
    return Status::Unavailable("simulated crash mid page flush");
  }
  if (it == page_index_.end()) {
    page_index_[key] = file_.AppendPage(payload);
  } else {
    file_.WritePage(it->second, payload);
  }
  obs::Cat().ingest_pages_flushed->Add();
  if (!during_recovery &&
      ShouldCrash(FaultInjector::CrashPoint::kAfterPageFlush)) {
    crashed_ = true;
    return Status::Unavailable(
        "simulated crash after page flush, before checkpoint record");
  }
  return Status::OK();
}

Status LiveColumnIndex::Checkpoint() {
  if (crashed_) return Crashed("Checkpoint");
  return CheckpointInternal(/*during_recovery=*/false);
}

Status LiveColumnIndex::CheckpointInternal(bool during_recovery) {
  if (!during_recovery) {
    Status s = SyncGroup();  // the flushed state must be committed state
    if (!s.ok()) return s;
  }

  // Dirty tree pages, in deterministic key order.
  std::vector<uint64_t> keys(dirty_since_checkpoint_.begin(),
                             dirty_since_checkpoint_.end());
  std::sort(keys.begin(), keys.end());
  for (const uint64_t key : keys) {
    const size_t dim = key >> 32;
    const uint64_t slot = key & 0xFFFFFFFFull;
    assert(dim < dims_);
    std::vector<std::byte> image;
    if (slot == kMetaSlot) {
      image = trees_[dim]->SerializeMeta();
    } else {
      assert(slot < trees_[dim]->num_nodes());
      image = trees_[dim]->SerializeNode(static_cast<uint32_t>(slot));
    }
    Status s = FlushPage(key, image, during_recovery);
    if (!s.ok()) return s;
  }

  // Committed ops since the last checkpoint, packed into append-only
  // row pages (never rewritten, so older checkpoints' rows cannot be
  // torn by this flush).
  const size_t cap = file_.payload_capacity() - sizeof(uint64_t);
  size_t at = ops_flushed_;
  while (at < ops_tail_.size()) {
    std::vector<std::byte> body;
    PutScalar<uint32_t>(&body, 0);  // count, patched below
    uint32_t count = 0;
    while (at < ops_tail_.size()) {
      const std::vector<std::byte> op_bytes = SerializeOp(ops_tail_[at]);
      if (body.size() + op_bytes.size() > cap) break;
      body.insert(body.end(), op_bytes.begin(), op_bytes.end());
      ++count;
      ++at;
    }
    if (count == 0) {
      return Status::Internal("row op larger than a checkpoint page");
    }
    std::memcpy(body.data(), &count, sizeof(count));
    Status s =
        FlushPage(kRowSpace | next_row_page_++, body, during_recovery);
    if (!s.ok()) return s;
  }

  // The checkpoint record seals the flush; only once it is durable may
  // the log be truncated.
  wal_.AppendCheckpoint();
  if (!during_recovery &&
      ShouldCrash(FaultInjector::CrashPoint::kMidCheckpoint)) {
    const WriteAheadLog::Stats st = wal_.stats();
    const size_t tail = st.log_bytes - st.durable_bytes;
    wal_.SyncPartial(tail > sizeof(uint32_t) ? tail - sizeof(uint32_t)
                                             : tail / 2);
    wal_.LoseVolatileTail();
    crashed_ = true;
    return Status::Unavailable("simulated crash mid checkpoint fsync");
  }
  wal_.Sync();
  (void)wal_.TruncateToLastCheckpoint();
  dirty_since_checkpoint_.clear();
  ops_flushed_ = ops_tail_.size();
  return Status::OK();
}

Status LiveColumnIndex::Recover() {
  if (!crashed_) {
    // Healthy recovery drill: publish what is pending so the in-memory
    // and durable states agree, then prove the durable state rebuilds.
    (void)SyncGroup();  // may itself hit a scheduled crash — proceed
  }
  obs::Cat().recoveries->Add();

  // 1. Surviving checkpoint-file pages. A torn page (crash mid-flush)
  //    is skipped: the WAL still holds its redo image.
  std::unordered_map<uint64_t, std::vector<std::byte>> images;
  std::map<uint64_t, std::vector<std::byte>> row_pages;  // seq -> body
  for (size_t idx = 0; idx < file_.num_pages(); ++idx) {
    auto page = file_.PeekPage(idx);
    if (!page.ok()) continue;
    const std::span<const std::byte> payload = page.value();
    if (payload.size() < sizeof(uint64_t)) continue;
    const uint64_t key = GetScalar<uint64_t>(payload, 0);
    const auto body = payload.subspan(sizeof(uint64_t));
    if (key & kRowSpace) {
      row_pages[key & ~kRowSpace] =
          std::vector<std::byte>(body.begin(), body.end());
    } else {
      images[key] = std::vector<std::byte>(body.begin(), body.end());
    }
  }

  // 2. WAL redo: committed transactions only, in LSN order — a later
  //    image of the same page simply overwrites (idempotent replay).
  const WriteAheadLog::RecoveryResult rr = wal_.Recover();
  std::vector<RowOp> wal_ops;
  uint64_t replayed = 0;
  for (const WriteAheadLog::Record& rec : rr.committed) {
    if (rec.type == WriteAheadLog::RecordType::kPageImage) {
      images[rec.page] = rec.payload;
      ++replayed;
    } else {
      RowOp op;
      size_t off = 0;
      Status s = ParseOp(rec.payload, &off, &op);
      if (!s.ok()) return s;
      wal_ops.push_back(std::move(op));
    }
  }
  obs::Cat().recovery_replayed_pages->Add(replayed);
  obs::Cat().recovery_discarded_txns->Add(rr.discarded_txns);

  // 3. Rebuild every dimension tree in place (listeners survive).
  for (size_t dim = 0; dim < dims_; ++dim) {
    const auto meta_it = images.find(MetaKey(dim));
    if (meta_it == images.end()) {
      return Status::DataLoss("no durable meta page for dimension " +
                              std::to_string(dim));
    }
    const std::span<const std::byte> meta(meta_it->second);
    if (meta.size() < 28) {
      return Status::DataLoss("meta image too small");
    }
    const uint32_t node_count = GetScalar<uint32_t>(meta, 24);
    std::vector<std::optional<std::vector<std::byte>>> slots(node_count);
    for (uint32_t slot = 0; slot < node_count; ++slot) {
      const auto it = images.find(NodeKey(dim, slot));
      if (it != images.end()) slots[slot] = it->second;
    }
    trees_[dim]->DropPendingNotifications();
    Status s = trees_[dim]->RestoreFromImages(meta, slots);
    if (!s.ok()) return s;
  }

  // 4. Committed row ops, merged by op sequence number. A crash after
  //    the row-page flush but before the log truncation leaves the same
  //    ops durable in BOTH the row pages and the WAL; keying by seq
  //    applies each exactly once, in original order.
  std::map<uint64_t, RowOp> ops_by_seq;
  for (const auto& [seq, body] : row_pages) {
    const std::span<const std::byte> in(body);
    if (in.size() < sizeof(uint32_t)) {
      return Status::DataLoss("row page too small");
    }
    const uint32_t count = GetScalar<uint32_t>(in, 0);
    size_t off = sizeof(uint32_t);
    for (uint32_t i = 0; i < count; ++i) {
      RowOp op;
      Status s = ParseOp(in, &off, &op);
      if (!s.ok()) return s;
      const uint64_t op_seq = op.seq;
      ops_by_seq.insert_or_assign(op_seq, std::move(op));
    }
  }
  for (RowOp& op : wal_ops) {
    const uint64_t op_seq = op.seq;
    ops_by_seq.insert_or_assign(op_seq, std::move(op));
  }
  std::vector<RowOp> ops;
  ops.reserve(ops_by_seq.size());
  next_op_seq_ =
      ops_by_seq.empty() ? 1 : ops_by_seq.rbegin()->first + 1;
  for (auto& [seq, op] : ops_by_seq) ops.push_back(std::move(op));

  // 5. Adopt: overlay and counters from the committed ops.
  inserted_.clear();
  erased_.clear();
  live_count_ = base_size_;
  pid_bound_ = base_size_;
  for (const RowOp& op : ops) {
    if (op.insert) {
      inserted_[op.pid] = op.coords;
      erased_.erase(op.pid);
      ++live_count_;
      pid_bound_ =
          std::max<size_t>(pid_bound_, static_cast<size_t>(op.pid) + 1);
    } else {
      inserted_.erase(op.pid);
      if (op.pid < base_size_) erased_.insert(op.pid);
      --live_count_;
    }
  }
  ops_tail_ = std::move(ops);
  pending_.clear();

  // 6. Fresh durable era: a full checkpoint into a new file and a
  //    reset log, so the torn remains of the crashed era are retired.
  file_ = PagedFile(disk_);
  page_index_.clear();
  next_row_page_ = 0;
  wal_.Reset();
  dirty_since_checkpoint_.clear();
  for (size_t dim = 0; dim < dims_; ++dim) {
    for (uint32_t slot = 0;
         slot < static_cast<uint32_t>(trees_[dim]->num_nodes()); ++slot) {
      dirty_since_checkpoint_.insert(NodeKey(dim, slot));
    }
    dirty_since_checkpoint_.insert(MetaKey(dim));
  }
  ops_flushed_ = 0;
  Status s = CheckpointInternal(/*during_recovery=*/true);
  if (!s.ok()) return s;
  crashed_ = false;
  PublishSnapshot();
  return Status::OK();
}

std::vector<std::byte> LiveColumnIndex::SerializeOp(const RowOp& op) {
  std::vector<std::byte> out;
  out.reserve(sizeof(uint64_t) + 1 + 2 * sizeof(uint32_t) +
              op.coords.size() * sizeof(Value));
  PutScalar<uint64_t>(&out, op.seq);
  PutScalar<uint8_t>(&out, op.insert ? 1 : 0);
  PutScalar<uint32_t>(&out, op.pid);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(op.coords.size()));
  for (const Value v : op.coords) PutScalar<Value>(&out, v);
  return out;
}

Status LiveColumnIndex::ParseOp(std::span<const std::byte> in,
                                size_t* offset, RowOp* out) {
  constexpr size_t kHeader = sizeof(uint64_t) + 1 + 2 * sizeof(uint32_t);
  if (*offset + kHeader > in.size()) {
    return Status::DataLoss("row op truncated");
  }
  out->seq = GetScalar<uint64_t>(in, *offset);
  const uint8_t kind = GetScalar<uint8_t>(in, *offset + 8);
  if (kind > 1) return Status::DataLoss("unknown row op kind");
  out->insert = kind == 1;
  out->pid = GetScalar<uint32_t>(in, *offset + 9);
  const uint32_t count = GetScalar<uint32_t>(in, *offset + 13);
  if (*offset + kHeader + count * sizeof(Value) > in.size()) {
    return Status::DataLoss("row op coordinates truncated");
  }
  out->coords.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->coords[i] =
        GetScalar<Value>(in, *offset + kHeader + i * sizeof(Value));
  }
  *offset += kHeader + count * sizeof(Value);
  return Status::OK();
}

}  // namespace knmatch

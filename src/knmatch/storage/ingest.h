#ifndef KNMATCH_STORAGE_INGEST_H_
#define KNMATCH_STORAGE_INGEST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/storage/bplus_tree.h"
#include "knmatch/storage/fault_injector.h"
#include "knmatch/storage/paged_file.h"
#include "knmatch/storage/wal.h"

namespace knmatch {

/// One committed mutation of the live column index. Erases carry the
/// erased coordinates too (recovery replays ops against the trees'
/// row bookkeeping without consulting the base dataset's column
/// values).
struct RowOp {
  bool insert = true;
  PointId pid = 0;
  /// Global op sequence number, assigned at log time. Serialized into
  /// both the WAL row record and the checkpoint row pages so recovery
  /// can merge the two sources without double-applying an op (a crash
  /// between the row-page flush and the log truncation leaves the same
  /// ops durable in both).
  uint64_t seq = 0;
  std::vector<Value> coords;
};

/// Crash-consistent live ingest over the per-dimension B+-trees: the
/// single-writer coordinator that makes InsertPoint/ErasePoint durable
/// and lets queries run concurrently with the writer.
///
/// ## Transaction protocol
/// A point mutation is ONE logical transaction across all d trees:
///
///   1. Mutate the d trees in memory (copy-on-write against the last
///      published snapshot; MutationListener callbacks buffered).
///   2. WAL: Begin, a full page image of every node slot the mutation
///      dirtied (plus each touched tree's meta page), one logical row
///      record, Commit.
///   3. When the group-commit window fills (or Flush()/Checkpoint()
///      is called): one Sync() makes the whole batch durable, then —
///      and only then — the buffered cache notifications fire, the
///      ops enter the committed tail, and a new snapshot epoch is
///      published for readers.
///
/// A crash before the commit record is durable loses the transaction
/// entirely (redo-only recovery discards it); after, recovery replays
/// it into all d trees. There is no state in between — the recovery
/// matrix test drives a kill at every boundary and checks exactly
/// this.
///
/// ## Durability surfaces
/// The durable state is (a) the checkpoint file — a PagedFile of
/// CRC-framed page images, each prefixed with its 64-bit page key —
/// and (b) the WAL's durable prefix. Checkpoint() flushes every page
/// dirtied since the previous checkpoint, appends row pages for the
/// committed ops since then, then appends + syncs a checkpoint record
/// and truncates the log up to it. Pages already flushed by an older
/// checkpoint are never rewritten unless re-dirtied, so any page a
/// crash can tear is still covered by an untruncated WAL image.
///
/// ## Snapshot reads
/// PinSnapshot() hands out the last *durably committed* state as
/// frozen per-dimension BPlusTree::Snapshots — readers on any thread
/// traverse them lock-free (I/O charging goes through the thread-safe
/// DiskSimulator) while the writer keeps mutating copy-on-write.
/// Answers over a pinned snapshot are bit-identical to a quiesced
/// engine holding the same committed state.
///
/// ## Crash simulation
/// A FaultInjector schedule (FaultInjector::ScheduleCrash) kills the
/// writer at WAL/fsync/flush/checkpoint boundaries: the in-memory
/// state is failstopped (crashed() == true, every mutation refused)
/// and the durable surfaces are left exactly as a power loss would —
/// volatile WAL tail gone, torn record at a mid-fsync edge, torn page
/// at a mid-flush kill. Recover() rebuilds the trees from the
/// checkpoint file plus the WAL redo records, verifies invariants,
/// re-checkpoints, and re-opens for business.
///
/// Thread-safety: mutations, Checkpoint(), and Recover() are
/// single-writer (external serialization); PinSnapshot(), epoch(),
/// and the stats accessors are safe from any thread.
class LiveColumnIndex {
 public:
  struct Config {
    /// Commits batched per WAL fsync (1 = every commit durable
    /// immediately; larger windows trade commit latency for fewer
    /// fsyncs — ops stay unpublished until the batch syncs).
    size_t group_commit_window = 1;
  };

  /// The frozen read view: one B+-tree snapshot per dimension plus the
  /// epoch and live cardinality they represent.
  struct ColumnSnapshot {
    std::vector<BPlusTree::Snapshot> trees;
    uint64_t epoch = 0;
    size_t size = 0;
    /// Exclusive upper bound on every pid in the trees. Erases make the
    /// live pid space sparse, so this can exceed `size`; pass it to
    /// SnapshotColumns so AD searches size their appearance tables for
    /// the id range, not the cardinality.
    size_t pid_bound = 0;
  };

  /// Fires after a batch of ops becomes durable and published — the
  /// engine's hook for post-commit cache invalidation.
  using CommitCallback = std::function<void(std::span<const RowOp>)>;

  /// Builds the live index over `base` on `disk`: bulk loads one tree
  /// per dimension, then writes the initial full checkpoint so every
  /// tree is durably recoverable from the start. `base` is copied
  /// (coordinates only); the simulator must outlive the index.
  LiveColumnIndex(const Dataset& base, DiskSimulator* disk,
                  Config config);
  LiveColumnIndex(const Dataset& base, DiskSimulator* disk);

  LiveColumnIndex(const LiveColumnIndex&) = delete;
  LiveColumnIndex& operator=(const LiveColumnIndex&) = delete;

  size_t dims() const { return trees_.size(); }
  /// Committed live cardinality (base + inserts - erases, published).
  size_t live_size() const;
  /// Current published snapshot epoch (starts at 1).
  uint64_t epoch() const;
  /// True after a (simulated) crash: every mutation is refused with
  /// kFailedPrecondition until Recover().
  bool crashed() const { return crashed_; }

  /// Inserts a point with explicit id `pid` (must not be live) into
  /// all d trees as one WAL transaction. With a group-commit window
  /// of 1 the op is durable and published on return; otherwise it is
  /// applied but unpublished until the window fills or Flush().
  Status Insert(PointId pid, std::span<const Value> coords);

  /// Erases the live point `pid` from all d trees as one WAL
  /// transaction; returns false (no transaction) when not live.
  /// Durability semantics as Insert.
  Result<bool> Erase(PointId pid);

  /// Syncs and publishes any ops waiting on the group-commit window.
  Status Flush();

  /// Flush + flush dirty pages to the checkpoint file + truncate the
  /// WAL. The recovery working set resets to (checkpoint file, empty
  /// log).
  Status Checkpoint();

  /// Rebuilds the committed state from the durable surfaces after a
  /// crash: checkpoint-file pages (torn ones skipped), then the WAL's
  /// committed redo records in LSN order (idempotent — a later image
  /// of the same page wins). Ends with a fresh full checkpoint and a
  /// new published epoch. Also callable when healthy (it then simply
  /// proves the durable state matches).
  Status Recover();

  /// The last durably published state. Thread-safe; cheap (shared_ptr
  /// copy). The snapshot stays valid for as long as the caller holds
  /// it, regardless of writer progress.
  std::shared_ptr<const ColumnSnapshot> PinSnapshot() const;

  /// Coordinates of a live point (committed or applied-but-pending),
  /// or kNotFound.
  Result<std::vector<Value>> CoordsOf(PointId pid) const;

  /// Applied live point ids, sorted ascending. Equals the committed
  /// live set whenever no ops are pending (e.g. right after Flush()).
  std::vector<PointId> LivePids() const;

  /// The committed (value, pid) column of dimension `dim`, sorted —
  /// what a quiesced bulk load of the live rows would contain. For
  /// differential tests; O(n log n).
  std::vector<ColumnEntry> CommittedColumn(size_t dim) const;

  /// All committed ops since construction, in commit order.
  std::span<const RowOp> committed_ops() const { return ops_tail_; }

  /// Post-commit hook (see CommitCallback). Single-writer state.
  void set_commit_callback(CommitCallback cb) {
    commit_callback_ = std::move(cb);
  }

  /// Registers the crash-point schedule source (nullptr to detach).
  void set_fault_injector(FaultInjector* injector) {
    injector_ = injector;
  }

  /// The dimension-`dim` tree (listener wiring and tests; mutations
  /// remain the index's business).
  BPlusTree& tree(size_t dim) { return *trees_[dim]; }
  const BPlusTree& tree(size_t dim) const { return *trees_[dim]; }

  const WriteAheadLog& wal() const { return wal_; }
  /// Reusable node slots across all dimension trees.
  size_t free_slots() const;
  /// Pages in the checkpoint file.
  size_t checkpoint_pages() const { return file_.num_pages(); }
  /// Ops applied to the trees but not yet durable (group window).
  size_t pending_ops() const { return pending_.size(); }

 private:
  /// Page-key space: tree node pages are dim * 2^32 + slot, each
  /// tree's meta page is dim * 2^32 + 0xFFFFFFFF, and committed-op row
  /// pages live under the top bit with an append-only sequence number.
  static constexpr uint64_t kMetaSlot = 0xFFFFFFFFull;
  static constexpr uint64_t kRowSpace = 0x8000000000000000ull;
  static uint64_t NodeKey(size_t dim, uint32_t slot) {
    return (static_cast<uint64_t>(dim) << 32) | slot;
  }
  static uint64_t MetaKey(size_t dim) {
    return (static_cast<uint64_t>(dim) << 32) | kMetaSlot;
  }

  /// Consults the injector for a scheduled kill at `point`.
  bool ShouldCrash(FaultInjector::CrashPoint point);
  /// Failstop: refuse all further mutations until Recover().
  Status Crashed(const char* where);

  /// Steps 1+2 of the protocol for one op (trees already mutated by
  /// the caller): WAL-log dirty page images + the row record + commit;
  /// sync when the window fills.
  Status LogAndMaybeSync(RowOp op);
  /// Sync the WAL (kMidFsync / kAfterFsync kill points) and publish
  /// every pending op.
  Status SyncGroup();
  /// Deliver buffered notifications, extend the committed tail, bump
  /// the epoch, publish a fresh snapshot, fire the commit callback.
  void Publish();
  /// Rebuilds and publishes the snapshot from the current tree state.
  void PublishSnapshot();

  /// Writes `image` under `key` into the checkpoint file (kMidPageFlush
  /// / kAfterPageFlush kill points honored unless `during_recovery`).
  Status FlushPage(uint64_t key, std::span<const std::byte> image,
                   bool during_recovery);
  /// Flushes dirty tree pages + new row pages + checkpoint record.
  Status CheckpointInternal(bool during_recovery);

  /// Serialized row-op forms (WAL payloads and row-page rows).
  static std::vector<std::byte> SerializeOp(const RowOp& op);
  static Status ParseOp(std::span<const std::byte> in, size_t* offset,
                        RowOp* out);

  DiskSimulator* disk_;
  Config config_;
  size_t dims_ = 0;
  std::vector<std::unique_ptr<BPlusTree>> trees_;
  WriteAheadLog wal_;
  PagedFile file_;
  /// page key -> index in file_ (rebuilt on recovery).
  std::unordered_map<uint64_t, size_t> page_index_;
  /// Row pages are append-only; next sequence number.
  uint64_t next_row_page_ = 0;

  /// Base coordinates (flat, row-major) — the pre-ingest dataset.
  std::vector<Value> base_flat_;
  size_t base_size_ = 0;
  /// Applied overlay (committed + pending): inserted coords / erased
  /// pids. Single-writer state, read by the writer only.
  std::unordered_map<PointId, std::vector<Value>> inserted_;
  std::unordered_set<PointId> erased_;

  /// Applied live cardinality (== committed at every publish point).
  size_t live_count_ = 0;
  /// Exclusive upper bound on every pid ever applied (monotonic within
  /// an era; recomputed from committed state by Recover()).
  size_t pid_bound_ = 0;
  /// Next op sequence number (stamps RowOp::seq at log time; restored
  /// to max committed seq + 1 by Recover()).
  uint64_t next_op_seq_ = 1;
  /// Committed ops in order; ops_flushed_ of them are in row pages.
  std::vector<RowOp> ops_tail_;
  size_t ops_flushed_ = 0;
  /// Applied but not yet durable (awaiting the group window).
  std::vector<RowOp> pending_;
  /// Page keys dirtied since the last checkpoint (includes metas).
  std::unordered_set<uint64_t> dirty_since_checkpoint_;

  bool crashed_ = false;
  FaultInjector* injector_ = nullptr;
  CommitCallback commit_callback_;

  /// The published snapshot; mu_ guards the pointer swap/read only.
  mutable std::mutex mu_;
  std::shared_ptr<const ColumnSnapshot> snapshot_;
  uint64_t epoch_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_INGEST_H_

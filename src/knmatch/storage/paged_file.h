#ifndef KNMATCH_STORAGE_PAGED_FILE_H_
#define KNMATCH_STORAGE_PAGED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "knmatch/storage/disk_simulator.h"

namespace knmatch {

/// A page-structured file on the simulated disk. Pages have the fixed
/// byte size of the owning DiskSimulator's config; reads are accounted
/// against a stream. The backing store is memory-resident (the
/// simulation is about *counting* I/O, not performing it), but all data
/// round-trips through serialized page images, so layout code is
/// genuinely exercised.
class PagedFile {
 public:
  /// Creates an empty file on `disk`. The simulator must outlive the
  /// file.
  explicit PagedFile(DiskSimulator* disk);

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  PagedFile(PagedFile&&) = default;
  PagedFile& operator=(PagedFile&&) = default;

  /// Page size in bytes.
  size_t page_size() const { return page_size_; }
  /// Number of pages in the file.
  size_t num_pages() const { return pages_.size(); }

  /// Appends a page image (at most page_size() bytes; shorter images are
  /// zero-padded). Returns the new page's index within this file.
  /// Writes are a build-time operation and are not I/O-accounted.
  size_t AppendPage(std::span<const std::byte> image);

  /// Reads page `index`, charging the access to `stream`.
  std::span<const std::byte> ReadPage(size_t stream, size_t index) const;

  /// Reads page `index` without charging any I/O. For build-time
  /// verification and tests only.
  std::span<const std::byte> PeekPage(size_t index) const;

 private:
  DiskSimulator* disk_;
  size_t page_size_;
  uint64_t first_global_page_ = 0;
  std::vector<std::vector<std::byte>> pages_;
};

/// Helpers to serialize plain scalar values into / out of page images.
/// Little-endian host layout is assumed (x86-64).
template <typename T>
void PutScalar(std::vector<std::byte>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T GetScalar(std::span<const std::byte> in, size_t offset) {
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  return value;
}

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_PAGED_FILE_H_

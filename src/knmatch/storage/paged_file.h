#ifndef KNMATCH_STORAGE_PAGED_FILE_H_
#define KNMATCH_STORAGE_PAGED_FILE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "knmatch/common/status.h"
#include "knmatch/storage/disk_simulator.h"
#include "knmatch/storage/page_codec.h"

namespace knmatch {

/// A page-structured file on the simulated disk. Pages have the fixed
/// byte size of the owning DiskSimulator's config; reads are accounted
/// against a stream. The backing store is memory-resident (the
/// simulation is about *counting* I/O, not performing it), but all data
/// round-trips through serialized page images, so layout code is
/// genuinely exercised.
///
/// Every stored page is framed with a CRC32 checksum (see
/// storage/page_codec.h), verified on read. A read can therefore fail:
/// transient faults from the simulator's injector are retried up to
/// DiskSimulator::kMaxReadAttempts times; checksum failures — whether
/// from an injected transfer corruption or damage to the stored image —
/// quarantine the page and report kDataLoss. Reads of a quarantined
/// page are refused immediately without charging I/O.
class PagedFile {
 public:
  /// Creates an empty file on `disk`. The simulator must outlive the
  /// file.
  explicit PagedFile(DiskSimulator* disk);

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  PagedFile(PagedFile&&) = default;
  PagedFile& operator=(PagedFile&&) = default;

  /// Page size in bytes (frame included).
  size_t page_size() const { return page_size_; }
  /// Payload bytes available per page (page_size minus the checksum
  /// frame).
  size_t payload_capacity() const {
    return page_size_ - kPageFrameOverhead;
  }
  /// Number of pages in the file.
  size_t num_pages() const { return pages_.size(); }
  /// Global page id of this file's first page.
  uint64_t first_global_page() const { return first_global_page_; }
  /// Global page id of page `index`. Bulk-built files have contiguous
  /// runs (first_global_page() + index); files that keep growing while
  /// other files allocate (the live-ingest WAL era) may not.
  uint64_t global_page(size_t index) const { return global_of_[index]; }

  /// Appends a page holding `payload` (at most payload_capacity()
  /// bytes; asserted). Returns the new page's index within this file.
  /// Writes are a build-time operation and are not I/O-accounted.
  size_t AppendPage(std::span<const std::byte> payload);

  /// Overwrites page `index` in place with a freshly framed `payload`
  /// (write-time I/O is not modelled, matching AppendPage). Clears the
  /// cached verification verdict.
  void WritePage(size_t index, std::span<const std::byte> payload);

  /// Crash simulation: an overwrite (append when `index` ==
  /// num_pages()) interrupted part-way. The stored image gets the
  /// first `valid_bytes` of the new frame and keeps/zero-fills the
  /// rest, so its CRC no longer matches — exactly a torn page write.
  void WritePageTorn(size_t index, std::span<const std::byte> payload,
                     size_t valid_bytes);

  /// Reads page `index`, charging the access to `stream`, and returns
  /// the verified payload (its exact appended length). Fails with
  /// kOutOfRange for a bad index, kDataLoss for a quarantined or
  /// corrupt page, kUnavailable when transient faults exhaust the
  /// retry budget.
  Result<std::span<const std::byte>> ReadPage(size_t stream,
                                              size_t index) const;

  /// Reads page `index` without charging any I/O (and without the
  /// injector's transfer faults — but the stored image is still
  /// verified). For build-time verification and tests only.
  Result<std::span<const std::byte>> PeekPage(size_t index) const;

  /// Test hook: XORs `mask` into byte `offset` of stored page `index`,
  /// modelling at-rest damage (bit rot). The next verified read fails
  /// its checksum.
  void CorruptStoredByte(size_t index, size_t offset,
                         uint8_t mask = 0xFF);

 private:
  /// Verifies the stored image of page `index`, caching the verdict
  /// (at-rest damage does not heal, so one verification per image
  /// suffices; CorruptStoredByte invalidates the cache entry).
  Result<std::span<const std::byte>> VerifyStored(size_t index) const;

  DiskSimulator* disk_;
  size_t page_size_;
  uint64_t first_global_page_ = 0;
  std::vector<std::vector<std::byte>> pages_;
  /// Per-page global ids (contiguous for bulk-built files, but live
  /// ingest interleaves allocations across files).
  std::vector<uint64_t> global_of_;
  /// Per-page memo of a passed at-rest verification.
  mutable std::vector<bool> verified_;
};

/// Helpers to serialize plain scalar values into / out of page images.
/// Little-endian host layout is assumed (x86-64).
template <typename T>
void PutScalar(std::vector<std::byte>* out, T value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
T GetScalar(std::span<const std::byte> in, size_t offset) {
  assert(offset + sizeof(T) <= in.size() &&
         "GetScalar reads past the end of the page image");
  T value;
  std::memcpy(&value, in.data() + offset, sizeof(T));
  return value;
}

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_PAGED_FILE_H_

#include "knmatch/storage/wal.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_set>

#include "knmatch/obs/catalog.h"
#include "knmatch/storage/page_codec.h"
#include "knmatch/storage/paged_file.h"

namespace knmatch {

namespace {

/// Fixed body prefix: type (u8) + lsn + txn + page (u64 each).
constexpr size_t kBodyHeader = 1 + 3 * sizeof(uint64_t);
/// Frame overhead around the body: length header + CRC trailer.
constexpr size_t kFrameOverhead = 2 * sizeof(uint32_t);

bool KnownType(uint8_t t) {
  return t >= static_cast<uint8_t>(WriteAheadLog::RecordType::kBegin) &&
         t <= static_cast<uint8_t>(WriteAheadLog::RecordType::kCheckpoint);
}

}  // namespace

uint64_t WriteAheadLog::Append(RecordType type, uint64_t txn, uint64_t page,
                               std::span<const std::byte> payload) {
  assert(payload.size() <= config_.max_record_payload &&
         "WAL record payload exceeds the configured bound");
  const uint64_t lsn = next_lsn_++;

  std::vector<std::byte> body;
  body.reserve(kBodyHeader + payload.size());
  PutScalar<uint8_t>(&body, static_cast<uint8_t>(type));
  PutScalar<uint64_t>(&body, lsn);
  PutScalar<uint64_t>(&body, txn);
  PutScalar<uint64_t>(&body, page);
  body.insert(body.end(), payload.begin(), payload.end());

  const uint32_t crc = Crc32(body);
  const size_t frame_bytes = body.size() + kFrameOverhead;
  log_.reserve(log_.size() + frame_bytes);
  PutScalar<uint32_t>(&log_, static_cast<uint32_t>(body.size()));
  log_.insert(log_.end(), body.begin(), body.end());
  PutScalar<uint32_t>(&log_, crc);

  ++appends_;
  bytes_appended_ += frame_bytes;
  obs::Cat().wal_appends->Add();
  obs::Cat().wal_bytes->Add(frame_bytes);
  return lsn;
}

uint64_t WriteAheadLog::Begin() {
  const uint64_t txn = next_txn_++;
  Append(RecordType::kBegin, txn, 0, {});
  return txn;
}

uint64_t WriteAheadLog::AppendPageImage(uint64_t txn, uint64_t page,
                                        std::span<const std::byte> image) {
  return Append(RecordType::kPageImage, txn, page, image);
}

uint64_t WriteAheadLog::AppendRow(RecordType type, uint64_t txn,
                                  std::span<const std::byte> row) {
  assert(type == RecordType::kRowInsert || type == RecordType::kRowErase);
  return Append(type, txn, 0, row);
}

WriteAheadLog::CommitTicket WriteAheadLog::AppendCommit(uint64_t txn) {
  CommitTicket ticket;
  ticket.lsn = Append(RecordType::kCommit, txn, 0, {});
  ++commits_;
  ++pending_commits_;
  obs::Cat().wal_commits->Add();
  ticket.group_full = pending_commits_ >= config_.group_commit_window;
  return ticket;
}

uint64_t WriteAheadLog::AppendCheckpoint() {
  const uint64_t lsn = Append(RecordType::kCheckpoint, 0, 0, {});
  ++checkpoints_;
  obs::Cat().wal_checkpoints->Add();
  return lsn;
}

void WriteAheadLog::Sync() {
  durable_size_ = log_.size();
  pending_commits_ = 0;
  ++fsyncs_;
  obs::Cat().wal_fsyncs->Add();
}

void WriteAheadLog::SyncPartial(size_t bytes) {
  durable_size_ = std::min(log_.size(), durable_size_ + bytes);
  // Deliberately no fsync count, no pending-commit reset: the sync
  // never completed, so nothing was acknowledged.
}

void WriteAheadLog::LoseVolatileTail() {
  log_.resize(durable_size_);
  pending_commits_ = 0;
}

Status WriteAheadLog::TruncateToLastCheckpoint() {
  std::vector<Record> records;
  ScanImage(DurableImage(), &records);
  // Walk the frames again to find the byte offset where the last
  // checkpoint record starts.
  size_t off = 0;
  size_t last_checkpoint_off = static_cast<size_t>(-1);
  for (const Record& rec : records) {
    const size_t frame_bytes =
        kFrameOverhead + kBodyHeader + rec.payload.size();
    if (rec.type == RecordType::kCheckpoint) last_checkpoint_off = off;
    off += frame_bytes;
  }
  if (last_checkpoint_off == static_cast<size_t>(-1)) {
    return Status::NotFound("no durable checkpoint record to truncate to");
  }
  if (last_checkpoint_off == 0) return Status::OK();  // already truncated
  log_.erase(log_.begin(),
             log_.begin() + static_cast<ptrdiff_t>(last_checkpoint_off));
  durable_size_ -= last_checkpoint_off;
  ++truncations_;
  return Status::OK();
}

void WriteAheadLog::Reset() {
  log_.clear();
  durable_size_ = 0;
  pending_commits_ = 0;
  next_lsn_ = 1;
  next_txn_ = 1;
}

bool WriteAheadLog::ScanImage(std::span<const std::byte> image,
                              std::vector<Record>* out) const {
  size_t off = 0;
  while (off + sizeof(uint32_t) <= image.size()) {
    const uint32_t body_len = GetScalar<uint32_t>(image, off);
    if (body_len < kBodyHeader ||
        body_len > kBodyHeader + config_.max_record_payload) {
      return true;  // implausible length header: torn or corrupt
    }
    const size_t frame_end = off + kFrameOverhead + body_len;
    if (frame_end > image.size()) return true;  // partial frame at tail
    const auto body = image.subspan(off + sizeof(uint32_t), body_len);
    const uint32_t stored_crc =
        GetScalar<uint32_t>(image, off + sizeof(uint32_t) + body_len);
    if (stored_crc != Crc32(body)) return true;  // damaged frame

    Record rec;
    const uint8_t type = GetScalar<uint8_t>(body, 0);
    if (!KnownType(type)) return true;
    rec.type = static_cast<RecordType>(type);
    rec.lsn = GetScalar<uint64_t>(body, 1);
    rec.txn = GetScalar<uint64_t>(body, 1 + sizeof(uint64_t));
    rec.page = GetScalar<uint64_t>(body, 1 + 2 * sizeof(uint64_t));
    rec.payload.assign(body.begin() + kBodyHeader, body.end());
    out->push_back(std::move(rec));
    off = frame_end;
  }
  // A clean image ends exactly at a frame boundary; leftover bytes
  // (fewer than a length header) are a torn tail too.
  return off != image.size();
}

WriteAheadLog::RecoveryResult WriteAheadLog::Recover() const {
  RecoveryResult result;
  std::vector<Record> records;
  result.torn_tail = ScanImage(DurableImage(), &records);

  std::unordered_set<uint64_t> committed;
  std::unordered_set<uint64_t> begun;
  for (const Record& rec : records) {
    result.max_lsn = std::max(result.max_lsn, rec.lsn);
    if (rec.type == RecordType::kBegin) begun.insert(rec.txn);
    if (rec.type == RecordType::kCommit) committed.insert(rec.txn);
  }
  result.committed_txns = committed.size();
  for (const uint64_t txn : begun) {
    if (!committed.contains(txn)) ++result.discarded_txns;
  }

  for (Record& rec : records) {
    const bool redo = rec.type == RecordType::kPageImage ||
                      rec.type == RecordType::kRowInsert ||
                      rec.type == RecordType::kRowErase;
    if (redo && committed.contains(rec.txn)) {
      result.committed.push_back(std::move(rec));
    }
  }
  return result;
}

WriteAheadLog::Stats WriteAheadLog::stats() const {
  Stats s;
  s.appends = appends_;
  s.commits = commits_;
  s.fsyncs = fsyncs_;
  s.bytes_appended = bytes_appended_;
  s.checkpoints = checkpoints_;
  s.truncations = truncations_;
  s.log_bytes = log_.size();
  s.durable_bytes = durable_size_;
  s.pending_commits = pending_commits_;
  s.next_lsn = next_lsn_;
  return s;
}

}  // namespace knmatch

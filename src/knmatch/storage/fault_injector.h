#ifndef KNMATCH_STORAGE_FAULT_INJECTOR_H_
#define KNMATCH_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace knmatch {

/// Deterministic fault source for the simulated disk. Attached to a
/// DiskSimulator, it is consulted once per *physical* read attempt
/// (buffered reads never reach the media, so they cannot fault) and
/// decides whether the attempt succeeds, fails transiently, or delivers
/// a corrupted page image.
///
/// Two kinds of schedule compose:
///  - Scripted faults (FailNextReads, CorruptPage): exact, per-page,
///    for targeted tests. Scripted corruption is sticky until healed.
///  - Randomized faults (transient_error_rate, corruption_rate):
///    seeded and hash-derived, so a run is reproducible bit-for-bit.
///    Transient faults are drawn independently per (page, attempt
///    number); corruption is a sticky per-page property (a damaged
///    sector stays damaged), drawn once from (seed, page).
///
/// Not thread-safe, like the DiskSimulator that owns the read path.
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0;
    /// Probability that any physical read attempt fails transiently.
    double transient_error_rate = 0.0;
    /// Probability that a page's stored image is damaged (per page,
    /// sticky: every read of a damaged page delivers garbage).
    double corruption_rate = 0.0;
  };

  enum class Outcome {
    kOk,
    kTransientError,  // nothing transferred; retrying may succeed
    kCorruption,      // a full page transferred, contents damaged
  };

  FaultInjector() = default;
  explicit FaultInjector(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Decides the outcome of one physical read attempt of `page`.
  /// Scripted faults take precedence over randomized ones; corruption
  /// takes precedence over a pending transient failure.
  Outcome OnReadAttempt(uint64_t page);

  /// Scripts the next `times` physical reads of `page` to fail
  /// transiently (fail-N-times-then-succeed).
  void FailNextReads(uint64_t page, uint32_t times);

  /// Scripts sticky corruption of `page`.
  void CorruptPage(uint64_t page);

  /// Removes any scripted fault on `page` and masks randomized
  /// corruption of it.
  void HealPage(uint64_t page);

  /// Drops every scripted fault, every healed-page mask, and both
  /// randomized rates: the disk is healthy from now on.
  void Clear();

  /// Totals of injected faults, for diagnostics and tests.
  uint64_t transient_faults_injected() const {
    return transient_faults_injected_;
  }
  uint64_t corruptions_injected() const { return corruptions_injected_; }

 private:
  /// Deterministic per-draw uniform in [0, 1).
  static double HashToUnit(uint64_t seed, uint64_t a, uint64_t b);

  Config config_;
  std::unordered_map<uint64_t, uint32_t> scripted_failures_;
  std::unordered_set<uint64_t> scripted_corrupt_;
  std::unordered_set<uint64_t> healed_;
  /// Per-page count of physical attempts, the per-attempt draw index.
  std::unordered_map<uint64_t, uint64_t> attempts_;
  uint64_t transient_faults_injected_ = 0;
  uint64_t corruptions_injected_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_FAULT_INJECTOR_H_

#ifndef KNMATCH_STORAGE_FAULT_INJECTOR_H_
#define KNMATCH_STORAGE_FAULT_INJECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace knmatch {

/// Deterministic fault source for the simulated disk. Attached to a
/// DiskSimulator, it is consulted once per *physical* read attempt
/// (buffered reads never reach the media, so they cannot fault) and
/// decides whether the attempt succeeds, fails transiently, or delivers
/// a corrupted page image.
///
/// Two kinds of schedule compose:
///  - Scripted faults (FailNextReads, CorruptPage): exact, per-page,
///    for targeted tests. Scripted corruption is sticky until healed.
///  - Randomized faults (transient_error_rate, corruption_rate):
///    seeded and hash-derived, so a run is reproducible bit-for-bit.
///    Transient faults are drawn independently per (page, attempt
///    number); corruption is a sticky per-page property (a damaged
///    sector stays damaged), drawn once from (seed, page).
///
/// Not thread-safe, like the DiskSimulator that owns the read path.
class FaultInjector {
 public:
  struct Config {
    uint64_t seed = 0;
    /// Probability that any physical read attempt fails transiently.
    double transient_error_rate = 0.0;
    /// Probability that a page's stored image is damaged (per page,
    /// sticky: every read of a damaged page delivers garbage).
    double corruption_rate = 0.0;
  };

  enum class Outcome {
    kOk,
    kTransientError,  // nothing transferred; retrying may succeed
    kCorruption,      // a full page transferred, contents damaged
  };

  /// Kill points of the live-ingest write path (storage/ingest.h).
  /// The writer consults ShouldCrash() at each boundary; a scheduled
  /// crash makes it fail-stop there, leaving exactly the durable state
  /// a power loss at that instant would leave. The crash-matrix test
  /// proves every point recovers to a bit-identical pre- or
  /// post-transaction state.
  enum class CrashPoint : uint8_t {
    kAfterWalAppend = 0,  // txn's page images logged, commit record not
    kAfterCommitAppend,   // commit record appended but not fsynced
    kMidFsync,            // fsync advanced the durable mark part-way
    kAfterFsync,          // commit durable; nothing flushed/published
    kMidPageFlush,        // checkpoint tore one flushed page image
    kAfterPageFlush,      // pages flushed; checkpoint record not logged
    kMidCheckpoint,       // checkpoint record durable, WAL not truncated
  };
  static constexpr size_t kNumCrashPoints = 7;

  FaultInjector() = default;
  explicit FaultInjector(const Config& config) : config_(config) {}

  const Config& config() const { return config_; }

  /// Decides the outcome of one physical read attempt of `page`.
  /// Scripted faults take precedence over randomized ones; corruption
  /// takes precedence over a pending transient failure.
  Outcome OnReadAttempt(uint64_t page);

  /// Scripts the next `times` physical reads of `page` to fail
  /// transiently (fail-N-times-then-succeed).
  void FailNextReads(uint64_t page, uint32_t times);

  /// Scripts sticky corruption of `page`.
  void CorruptPage(uint64_t page);

  /// Removes any scripted fault on `page` and masks randomized
  /// corruption of it.
  void HealPage(uint64_t page);

  /// Schedules a fail-stop crash at the `nth` future arrival at
  /// `point` (1 = the very next one). At most one schedule per point;
  /// re-scheduling replaces it.
  void ScheduleCrash(CrashPoint point, uint32_t nth = 1);

  /// Consulted by the ingest writer at each kill point: decrements the
  /// schedule for `point` and returns true when it hits zero (crash
  /// now). Unscheduled points always return false.
  bool ShouldCrash(CrashPoint point);

  /// True when any crash schedule is still armed.
  bool HasScheduledCrash() const;

  uint64_t crashes_delivered() const { return crashes_delivered_; }

  /// Drops every scripted fault, every healed-page mask, every crash
  /// schedule, and both randomized rates: the disk is healthy from now
  /// on.
  void Clear();

  /// Totals of injected faults, for diagnostics and tests.
  uint64_t transient_faults_injected() const {
    return transient_faults_injected_;
  }
  uint64_t corruptions_injected() const { return corruptions_injected_; }

 private:
  /// Deterministic per-draw uniform in [0, 1).
  static double HashToUnit(uint64_t seed, uint64_t a, uint64_t b);

  Config config_;
  std::unordered_map<uint64_t, uint32_t> scripted_failures_;
  std::unordered_set<uint64_t> scripted_corrupt_;
  std::unordered_set<uint64_t> healed_;
  /// Per-page count of physical attempts, the per-attempt draw index.
  std::unordered_map<uint64_t, uint64_t> attempts_;
  uint64_t transient_faults_injected_ = 0;
  uint64_t corruptions_injected_ = 0;
  /// Per-point countdown; 0 = unarmed.
  std::array<uint32_t, kNumCrashPoints> crash_schedule_{};
  uint64_t crashes_delivered_ = 0;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_FAULT_INJECTOR_H_

#ifndef KNMATCH_STORAGE_FREE_SPACE_H_
#define KNMATCH_STORAGE_FREE_SPACE_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace knmatch {

/// Tracks reusable page slots freed by lazy erases so that later
/// allocations fill holes instead of growing the file — the
/// free-space-manager half of the ingest engine's storage layer (the
/// WAL is the other half; see storage/wal.h).
///
/// Keys are opaque page/slot ids owned by the caller (the B+-tree uses
/// its node-slot indices). Acquisition order is deterministic —
/// always the smallest free id — so a mutation history replays to an
/// identical physical layout, which the crash-recovery tests rely on.
///
/// Not thread-safe; owned and serialized by the structure it serves.
class FreeSpaceManager {
 public:
  /// Marks `id` reusable. Freeing an id twice is a no-op (idempotent,
  /// so a redo-recovered free list can be re-applied safely).
  void Free(uint64_t id);

  /// Takes the smallest free id, or nullopt when none is free (the
  /// caller should then extend the file).
  std::optional<uint64_t> Acquire();

  bool is_free(uint64_t id) const { return free_.contains(id); }
  size_t free_count() const { return free_.size(); }

  /// The free ids in ascending order (for meta-page serialization).
  std::vector<uint64_t> ToSortedList() const;

  /// Replaces the free set (recovery from a deserialized meta page).
  void Restore(const std::vector<uint64_t>& ids);

  void Clear() { free_.clear(); }

 private:
  std::set<uint64_t> free_;
};

}  // namespace knmatch

#endif  // KNMATCH_STORAGE_FREE_SPACE_H_

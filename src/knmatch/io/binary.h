#ifndef KNMATCH_IO_BINARY_H_
#define KNMATCH_IO_BINARY_H_

#include <string>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"

namespace knmatch::io {

/// Binary dataset container (".knm"):
///   magic "KNM1" | u64 rows | u64 cols | u8 has_labels |
///   f64 coordinates row-major | i32 labels (if labelled) |
///   u64 FNV-1a checksum over everything before it.
/// Little-endian host layout; load verifies the magic and checksum so
/// truncated or corrupted files are rejected rather than half-loaded.
Status SaveDataset(const Dataset& db, const std::string& path);

/// Loads a dataset written by SaveDataset.
Result<Dataset> LoadDataset(const std::string& path);

}  // namespace knmatch::io

#endif  // KNMATCH_IO_BINARY_H_

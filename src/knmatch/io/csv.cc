#include "knmatch/io/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace knmatch::io {

namespace {

std::vector<std::string> SplitLine(const std::string& line,
                                   char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    fields.push_back(field);
  }
  // A trailing delimiter means one more (empty) field.
  if (!line.empty() && line.back() == delimiter) fields.emplace_back();
  return fields;
}

bool ParseNumber(const std::string& text, Value* out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || errno == ERANGE) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<Dataset> LoadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }

  Matrix points;
  std::vector<Label> labels;
  std::unordered_map<std::string, Label> label_ids;
  std::string line;
  size_t line_number = 0;
  size_t expected_fields = 0;
  std::vector<Value> row;

  while (std::getline(in, line)) {
    ++line_number;
    if (line_number == 1 && options.has_header) continue;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;

    const std::vector<std::string> fields =
        SplitLine(line, options.delimiter);
    if (expected_fields == 0) {
      expected_fields = fields.size();
      if (options.label_column >= 0 &&
          static_cast<size_t>(options.label_column) >= expected_fields) {
        return Status::InvalidArgument("label_column out of range");
      }
    } else if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": expected " +
          std::to_string(expected_fields) + " fields, got " +
          std::to_string(fields.size()));
    }

    row.clear();
    for (size_t i = 0; i < fields.size(); ++i) {
      if (options.label_column >= 0 &&
          i == static_cast<size_t>(options.label_column)) {
        auto [it, inserted] = label_ids.try_emplace(
            fields[i], static_cast<Label>(label_ids.size()));
        labels.push_back(it->second);
        continue;
      }
      Value v;
      if (!ParseNumber(fields[i], &v)) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_number) + ", field " +
            std::to_string(i + 1) + ": not a number: '" + fields[i] +
            "'");
      }
      row.push_back(v);
    }
    points.AppendRow(row);
  }

  if (points.rows() == 0) {
    return Status::InvalidArgument(path + " contains no data rows");
  }
  if (options.normalize) points.NormalizeColumns();
  Dataset db = options.label_column >= 0
                   ? Dataset(std::move(points), std::move(labels))
                   : Dataset(std::move(points));
  db.set_name(path);
  return db;
}

Status WriteCsv(const Dataset& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::Internal("cannot create " + path);
  }
  out.precision(17);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    auto p = db.point(pid);
    for (size_t dim = 0; dim < p.size(); ++dim) {
      if (dim > 0) out << ',';
      out << p[dim];
    }
    if (db.labelled()) out << ',' << db.label(pid);
    out << '\n';
  }
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace knmatch::io

#ifndef KNMATCH_IO_CSV_H_
#define KNMATCH_IO_CSV_H_

#include <string>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"

namespace knmatch::io {

/// Options for CSV import.
struct CsvOptions {
  /// Skip the first line.
  bool has_header = false;
  /// Column index holding the class label, or -1 when unlabelled. The
  /// label column is excluded from the coordinates; non-numeric labels
  /// are interned to integer ids in first-seen order.
  int label_column = -1;
  /// Field separator.
  char delimiter = ',';
  /// Min-max normalize coordinates to [0, 1] after loading (the
  /// paper's preprocessing for every dataset).
  bool normalize = true;
};

/// Loads a dataset from a CSV file — e.g., the real UCI files, when
/// available, in place of the synthetic replicas. Every row must have
/// the same number of fields; coordinate fields must parse as numbers.
Result<Dataset> LoadCsv(const std::string& path,
                        const CsvOptions& options = {});

/// Writes a dataset as CSV (coordinates, then the label as the last
/// column when present).
Status WriteCsv(const Dataset& db, const std::string& path);

}  // namespace knmatch::io

#endif  // KNMATCH_IO_CSV_H_

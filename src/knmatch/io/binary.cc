#include "knmatch/io/binary.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace knmatch::io {

namespace {

constexpr char kMagic[4] = {'K', 'N', 'M', '1'};

uint64_t Fnv1a(const std::vector<char>& bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

template <typename T>
void Append(std::vector<char>* out, const T& value) {
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

template <typename T>
bool Take(const std::vector<char>& in, size_t* offset, T* value) {
  if (*offset + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

Status SaveDataset(const Dataset& db, const std::string& path) {
  std::vector<char> bytes;
  bytes.insert(bytes.end(), kMagic, kMagic + 4);
  Append<uint64_t>(&bytes, db.size());
  Append<uint64_t>(&bytes, db.dims());
  Append<uint8_t>(&bytes, db.labelled() ? 1 : 0);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    for (const Value v : db.point(pid)) Append<double>(&bytes, v);
  }
  if (db.labelled()) {
    for (PointId pid = 0; pid < db.size(); ++pid) {
      Append<int32_t>(&bytes, db.label(pid));
    }
  }
  const uint64_t checksum = Fnv1a(bytes);
  Append<uint64_t>(&bytes, checksum);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot create " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::Internal("short write to " + path);
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("cannot open " + path);
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  std::vector<char> bytes(static_cast<size_t>(file_size));
  in.read(bytes.data(), file_size);
  if (!in) return Status::Internal("short read from " + path);

  if (bytes.size() < 4 + 8 + 8 + 1 + 8 ||
      std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument(path + " is not a KNM1 dataset file");
  }
  // Verify the trailing checksum first.
  uint64_t stored_checksum;
  std::memcpy(&stored_checksum, bytes.data() + bytes.size() - 8, 8);
  std::vector<char> body(bytes.begin(), bytes.end() - 8);
  if (Fnv1a(body) != stored_checksum) {
    return Status::Internal(path + ": checksum mismatch (corrupt file)");
  }

  size_t offset = 4;
  uint64_t rows = 0, cols = 0;
  uint8_t has_labels = 0;
  if (!Take(body, &offset, &rows) || !Take(body, &offset, &cols) ||
      !Take(body, &offset, &has_labels)) {
    return Status::Internal(path + ": truncated header");
  }
  const size_t expected = offset + rows * cols * sizeof(double) +
                          (has_labels != 0 ? rows * sizeof(int32_t) : 0);
  if (body.size() != expected) {
    return Status::Internal(path + ": payload size mismatch");
  }

  Matrix points(rows, cols);
  for (Value& v : points.data()) {
    double raw;
    Take(body, &offset, &raw);
    v = raw;
  }
  if (has_labels == 0) {
    return Dataset(std::move(points));
  }
  std::vector<Label> labels(rows);
  for (Label& label : labels) {
    int32_t raw;
    Take(body, &offset, &raw);
    label = raw;
  }
  return Dataset(std::move(points), std::move(labels));
}

}  // namespace knmatch::io

#include "knmatch/shard/shard_router.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/answer_merge.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/obs/catalog.h"

namespace knmatch::shard {

namespace {

using Clock = QueryContext::Clock;

int64_t ElapsedNs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              since)
      .count();
}

SimilarityEngine::DiskMethod ToDiskMethod(RouterOptions::Method method) {
  switch (method) {
    case RouterOptions::Method::kDiskScan:
      return SimilarityEngine::DiskMethod::kScan;
    case RouterOptions::Method::kDiskAd:
      return SimilarityEngine::DiskMethod::kAd;
    case RouterOptions::Method::kDiskVaFile:
      return SimilarityEngine::DiskMethod::kVaFile;
    case RouterOptions::Method::kDiskAuto:
    case RouterOptions::Method::kMemoryAd:
      break;
  }
  return SimilarityEngine::DiskMethod::kAuto;
}

/// True for the transient/data-loss statuses replica failover can heal.
/// Governance trips and validation errors are deterministic — retrying
/// them on another replica would only amplify load.
bool IsAvailabilityError(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

/// One replica: a full engine over this shard's slice, with its own
/// DiskSimulator (independent fault domain).
struct ShardRouter::Replica {
  std::unique_ptr<SimilarityEngine> engine;
};

struct ShardRouter::Shard {
  /// Local pid -> global pid. Slices are built in ascending global pid
  /// order, so this is sorted — local tie order equals global tie
  /// order, which the canonical merge relies on.
  std::vector<PointId> to_global;
  std::vector<Replica> replicas;
  /// Touched only by the one fan-out worker dispatching this shard;
  /// queries serialize on query_mu_, so accesses are race-free.
  mutable exec::CircuitBreaker breaker;
  mutable exec::EwmaLatency ewma;
  /// Round-robin primary-replica cursor.
  mutable std::atomic<uint64_t> rr{0};

  explicit Shard(exec::CircuitBreaker::Options breaker_options)
      : breaker(breaker_options) {}
};

/// An immutable shard layout. Queries pin it via shared_ptr; Rebalance
/// builds a replacement off to the side and swaps the pointer.
struct ShardRouter::ShardSet {
  std::vector<std::unique_ptr<Shard>> shards;
};

/// What one shard's dispatch produced, written by its fan-out worker
/// and aggregated single-threaded after the barrier.
struct ShardRouter::ShardOutcome {
  bool empty = false;         // shard holds no points; skipped silently
  bool dispatched = false;    // at least one replica attempt ran
  bool breaker_skip = false;  // refused by the shard's open breaker
  bool hedged = false;
  bool hedge_win = false;
  size_t failovers = 0;
  bool ok = false;
  FrequentKnMatchResult answer;  // valid when ok
  Status status;                 // valid when !ok
  int64_t elapsed_ns = 0;        // whole dispatch (all attempts)
};

ShardRouter::ShardRouter(const Dataset& db, RouterOptions options)
    : options_(std::move(options)), db_(db) {
  if (options_.shards == 0) options_.shards = 1;
  if (options_.replicas == 0) options_.replicas = 1;
  plan_ = BuildPartitionPlan(db_, options_.partitioner, options_.shards,
                             options_.partitions_per_shard, options_.seed);
  set_ = BuildShardSet(db_, plan_);
  cache_epoch_ = cache::NextResultEpoch();

  size_t workers = options_.threads == 0
                       ? exec::ResolveThreads(0)
                       : exec::ResolveThreads(options_.threads,
                                              /*allow_oversubscription=*/true);
  workers = std::min(workers, options_.shards);
  pool_ = std::make_unique<exec::ThreadPool>(workers);

  obs::Cat().shard_count->Set(static_cast<int64_t>(options_.shards));
  obs::Cat().shard_replicas->Set(static_cast<int64_t>(options_.replicas));
  PublishShardGauges(*set_);
}

ShardRouter::~ShardRouter() = default;

std::shared_ptr<const ShardRouter::ShardSet> ShardRouter::BuildShardSet(
    const Dataset& db, const PartitionPlan& plan) const {
  const size_t S = options_.shards;
  const size_t R = options_.replicas;
  auto set = std::make_shared<ShardSet>();
  set->shards.reserve(S);

  // Slice in one ascending-pid sweep so every shard's local order is
  // the global order restricted to it.
  std::vector<Dataset> slices(S);
  std::vector<std::vector<PointId>> to_global(S);
  for (PointId pid = 0; pid < db.size(); ++pid) {
    const uint32_t s = plan.shard_of(pid);
    slices[s].Append(db.point(pid), db.label(pid));
    to_global[s].push_back(pid);
  }

  for (size_t s = 0; s < S; ++s) {
    auto sh = std::make_unique<Shard>(options_.breaker);
    sh->to_global = std::move(to_global[s]);
    slices[s].set_name(db.name() + "/shard" + std::to_string(s));
    sh->replicas.reserve(R);
    for (size_t r = 0; r < R; ++r) {
      Dataset copy = (r + 1 == R) ? std::move(slices[s]) : slices[s];
      sh->replicas.push_back(Replica{std::make_unique<SimilarityEngine>(
          std::move(copy), options_.disk_config)});
    }
    set->shards.push_back(std::move(sh));
  }
  return set;
}

std::shared_ptr<const ShardRouter::ShardSet> ShardRouter::Pin() const {
  std::scoped_lock lock(set_mu_);
  return set_;
}

void ShardRouter::PublishShardGauges(const ShardSet& set) const {
  for (size_t s = 0; s < set.shards.size(); ++s) {
    obs::ShardPointsGauge(s)->Set(
        static_cast<int64_t>(set.shards[s]->to_global.size()));
  }
}

Result<KnMatchResult> ShardRouter::KnMatch(std::span<const Value> query,
                                           size_t n, size_t k,
                                           std::span<const Value> weights,
                                           QueryContext* ctx) const {
  auto merged = RunQuery(query, n, n, k, weights, ctx, /*frequent=*/false);
  if (!merged.ok()) return merged.status();
  KnMatchResult out;
  out.matches = std::move(merged.value().per_n_sets[0]);
  out.attributes_retrieved = merged.value().attributes_retrieved;
  return out;
}

Result<FrequentKnMatchResult> ShardRouter::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, QueryContext* ctx) const {
  return RunQuery(query, n0, n1, k, weights, ctx, /*frequent=*/true);
}

Result<FrequentKnMatchResult> ShardRouter::RunQuery(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    std::span<const Value> weights, QueryContext* ctx, bool frequent) const {
  Status valid =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n0, n1, k);
  if (!valid.ok()) return valid;
  valid = ValidateAdWeights(weights, db_.dims());
  if (!valid.ok()) return valid;
  if (!weights.empty() && options_.method != RouterOptions::Method::kMemoryAd) {
    return Status::InvalidArgument(
        "per-dimension weights require the in-memory method (the disk "
        "path takes none)");
  }
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();
  if (ctx != nullptr) {
    ctx->ArmPages(nullptr);
    // Latch an already-expired deadline or a raised cancel flag on the
    // caller's context before any fan-out work starts (the batch
    // executor skips doomed queries the same way).
    if (ctx->governed() && !ctx->Recheck(0, 0)) return ctx->trip_status();
  }

  std::scoped_lock query_lock(query_mu_);
  last_ = DispatchReport{};
  queries_.fetch_add(1, std::memory_order_relaxed);
  obs::Cat().shard_queries->Add();

  // Router-level cache: full-coverage answers only, keyed under the
  // router's own result epoch.
  if (cache_ != nullptr) {
    if (frequent) {
      if (auto hit = cache_->LookupFrequent(cache_epoch_, query, n0, n1, k,
                                            weights)) {
        last_.cache_hit = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs::Cat().shard_cache_hits->Add();
        return std::move(*hit);
      }
    } else {
      if (auto hit = cache_->LookupKnMatch(cache_epoch_, query, n0, k,
                                           weights)) {
        last_.cache_hit = true;
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        obs::Cat().shard_cache_hits->Add();
        FrequentKnMatchResult wrapped;
        wrapped.per_n_sets.push_back(std::move(hit->matches));
        wrapped.attributes_retrieved = hit->attributes_retrieved;
        return wrapped;
      }
    }
  }

  const std::shared_ptr<const ShardSet> set = Pin();
  const size_t S = set->shards.size();
  size_t live = 0;
  for (const auto& sh : set->shards) {
    if (!sh->to_global.empty()) ++live;
  }

  // Governance slices: every shard races the same absolute deadline (a
  // fraction of the caller's remaining time, keeping gather headroom),
  // and the caller's attribute/page budgets split evenly across the
  // live shards.
  const bool has_deadline = ctx != nullptr && ctx->has_deadline();
  Clock::time_point slice_deadline{};
  if (has_deadline) {
    const Clock::time_point now = Clock::now();
    auto remaining = ctx->deadline() - now;
    if (remaining.count() < 0) remaining = Clock::duration::zero();
    slice_deadline =
        now + std::chrono::duration_cast<Clock::duration>(
                  remaining * options_.deadline_slice_fraction);
  }
  QueryBudgets budgets;
  std::shared_ptr<std::atomic<bool>> cancel;
  if (ctx != nullptr) {
    budgets = ctx->budgets();
    cancel = ctx->cancel_token();
    if (options_.split_budgets && live > 1) {
      if (budgets.max_attributes != 0) {
        budgets.max_attributes =
            std::max<uint64_t>(1, budgets.max_attributes / live);
      }
      if (budgets.max_pages != 0) {
        budgets.max_pages = std::max<uint64_t>(1, budgets.max_pages / live);
      }
    }
  }

  std::vector<ShardOutcome> outcomes(S);
  const Clock::time_point fanout_start = Clock::now();
  pool_->ParallelFor(S, [&](size_t, size_t s) {
    DispatchShard(*set, s, query, n0, n1, k, weights, frequent, has_deadline,
                  slice_deadline, budgets, cancel, &outcomes[s]);
  });
  const int64_t fanout_ns = ElapsedNs(fanout_start);

  // Aggregate single-threaded: counters, metrics, degradation record.
  DispatchReport report;
  std::vector<const FrequentKnMatchResult*> partials;
  partials.reserve(S);
  for (size_t s = 0; s < S; ++s) {
    ShardOutcome& o = outcomes[s];
    if (o.empty) continue;
    ++report.degradation.shards_total;
    if (o.breaker_skip) {
      ++report.breaker_skips;
      report.degradation.failed.push_back(
          {static_cast<uint32_t>(s), o.status});
      continue;
    }
    ++report.shards_dispatched;
    if (o.hedged) ++report.hedges;
    if (o.hedge_win) ++report.hedge_wins;
    report.failovers += o.failovers;
    obs::Cat().shard_dispatch_seconds->Observe(
        static_cast<uint64_t>(o.elapsed_ns));
    if (o.ok) {
      ++report.degradation.shards_answered;
      partials.push_back(&o.answer);
    } else {
      report.degradation.failed.push_back(
          {static_cast<uint32_t>(s), o.status});
    }
  }
  dispatches_.fetch_add(report.shards_dispatched, std::memory_order_relaxed);
  hedges_.fetch_add(report.hedges, std::memory_order_relaxed);
  hedge_wins_.fetch_add(report.hedge_wins, std::memory_order_relaxed);
  failovers_.fetch_add(report.failovers, std::memory_order_relaxed);
  breaker_skips_.fetch_add(report.breaker_skips, std::memory_order_relaxed);
  {
    const obs::Catalog& cat = obs::Cat();
    cat.shard_dispatches->Add(report.shards_dispatched);
    cat.shard_hedges->Add(report.hedges);
    cat.shard_hedge_wins->Add(report.hedge_wins);
    cat.shard_failovers->Add(report.failovers);
    cat.shard_breaker_skips->Add(report.breaker_skips);
    cat.shard_fanout_seconds->Observe(static_cast<uint64_t>(fanout_ns));
  }
  last_ = report;

  if (report.degradation.shards_answered == 0 ||
      (report.degradation.partial() && !options_.allow_partial)) {
    // Nothing usable (or partial coverage refused): surface the first
    // failed shard's status.
    return report.degradation.failed.empty()
               ? Status::Internal("sharded query produced no answer")
               : report.degradation.failed.front().status;
  }
  if (report.degradation.partial()) {
    partial_answers_.fetch_add(1, std::memory_order_relaxed);
    obs::Cat().shard_partial_answers->Add();
  }

  FrequentKnMatchResult merged =
      internal::MergeFrequentPartials(partials, n1 - n0 + 1, k);

  // The gather keeps honoring the caller's own deadline/cancel; the
  // shard slices already enforced the (split) budgets.
  if (ctx != nullptr && ctx->governed() && !ctx->Recheck(0, 0)) {
    ctx->StorePartialSets(&merged.per_n_sets);
    return ctx->trip_status();
  }

  if (cache_ != nullptr && !report.degradation.partial()) {
    if (frequent) {
      cache_->StoreFrequent(cache_epoch_, query, n0, n1, k, weights, merged);
    } else {
      KnMatchResult flat;
      flat.matches = merged.per_n_sets[0];
      flat.attributes_retrieved = merged.attributes_retrieved;
      cache_->StoreKnMatch(cache_epoch_, query, n0, k, weights, flat);
    }
  }
  if (ctx != nullptr) ctx->ObserveDeadlineFraction();
  return merged;
}

void ShardRouter::DispatchShard(
    const ShardSet& set, size_t shard_index, std::span<const Value> query,
    size_t n0, size_t n1, size_t k, std::span<const Value> weights,
    bool frequent, bool has_deadline, Clock::time_point slice_deadline,
    const QueryBudgets& budgets,
    const std::shared_ptr<std::atomic<bool>>& cancel,
    ShardOutcome* out) const {
  const Shard& sh = *set.shards[shard_index];
  if (sh.to_global.empty()) {
    out->empty = true;
    return;
  }
  if (!sh.breaker.Allow()) {
    out->breaker_skip = true;
    out->status = Status::Unavailable("shard circuit breaker open");
    return;
  }
  out->dispatched = true;
  const Clock::time_point start = Clock::now();
  const size_t R = sh.replicas.size();
  const size_t k_eff = std::min(k, sh.to_global.size());
  const size_t primary =
      sh.rr.fetch_add(1, std::memory_order_relaxed) % R;

  std::vector<char> tried(R, 0);
  bool trip = false;
  Result<FrequentKnMatchResult> res =
      Status::Unavailable("shard not dispatched");

  const bool hedge = options_.hedge_threshold_ms > 0 && R > 1 &&
                     sh.ewma.ms() >= options_.hedge_threshold_ms;
  if (hedge) {
    // Wait-both hedging: the duplicate runs on its own replica engine
    // concurrently; we always join it before returning so no engine is
    // ever touched by two queries at once. "First usable answer wins"
    // decides attribution (hedge_win), not which answer is used —
    // answers are identical, so preferring the primary's is harmless.
    out->hedged = true;
    const size_t hedge_replica = (primary + 1) % R;
    tried[primary] = 1;
    tried[hedge_replica] = 1;
    Result<FrequentKnMatchResult> hedge_res =
        Status::Unavailable("hedge not dispatched");
    bool hedge_trip = false;
    std::atomic<int> first{-1};
    std::thread duplicate([&] {
      hedge_res = RunReplica(sh, hedge_replica, query, n0, n1, k_eff,
                             weights, frequent, has_deadline, slice_deadline,
                             budgets, cancel, &hedge_trip);
      int expected = -1;
      first.compare_exchange_strong(expected, 1,
                                    std::memory_order_acq_rel);
    });
    res = RunReplica(sh, primary, query, n0, n1, k_eff, weights, frequent,
                     has_deadline, slice_deadline, budgets, cancel, &trip);
    int expected = -1;
    first.compare_exchange_strong(expected, 0, std::memory_order_acq_rel);
    duplicate.join();
    if (first.load(std::memory_order_acquire) == 1 && hedge_res.ok()) {
      out->hedge_win = true;
    }
    if (!res.ok() && hedge_res.ok()) {
      // The hedge rescued a failed (or tripped) primary.
      res = std::move(hedge_res);
      trip = false;
      out->hedge_win = true;
    }
  } else {
    tried[primary] = 1;
    res = RunReplica(sh, primary, query, n0, n1, k_eff, weights, frequent,
                     has_deadline, slice_deadline, budgets, cancel, &trip);
  }

  if (!res.ok() && !trip && IsAvailabilityError(res.status())) {
    for (size_t i = 1; i < R; ++i) {
      const size_t r = (primary + i) % R;
      if (tried[r]) continue;
      ++out->failovers;
      trip = false;
      res = RunReplica(sh, r, query, n0, n1, k_eff, weights, frequent,
                       has_deadline, slice_deadline, budgets, cancel, &trip);
      if (res.ok() || trip || !IsAvailabilityError(res.status())) break;
    }
  }

  out->elapsed_ns = ElapsedNs(start);
  sh.ewma.Record(out->elapsed_ns);
  if (res.ok()) {
    sh.breaker.RecordSuccess();
    out->ok = true;
    out->answer = std::move(res.value());
  } else {
    sh.breaker.RecordFailure();
    out->status = res.status();
  }
}

Result<FrequentKnMatchResult> ShardRouter::RunReplica(
    const Shard& sh, size_t replica_index, std::span<const Value> query,
    size_t n0, size_t n1, size_t k, std::span<const Value> weights,
    bool frequent, bool has_deadline, Clock::time_point slice_deadline,
    const QueryBudgets& budgets,
    const std::shared_ptr<std::atomic<bool>>& cancel,
    bool* governance_trip) const {
  *governance_trip = false;
  SimilarityEngine& engine = *sh.replicas[replica_index].engine;

  QueryContext slice;
  if (has_deadline) slice.set_deadline(slice_deadline);
  if (cancel != nullptr) slice.set_cancel(cancel);
  slice.budgets() = budgets;
  QueryContext* pc = slice.governed() ? &slice : nullptr;

  Result<FrequentKnMatchResult> res =
      Status::Unavailable("replica not dispatched");
  switch (options_.method) {
    case RouterOptions::Method::kMemoryAd:
      if (frequent) {
        res = engine.FrequentKnMatch(query, n0, n1, k, weights, pc);
      } else {
        auto kn = engine.KnMatch(query, n0, k, weights, pc);
        if (!kn.ok()) {
          res = kn.status();
        } else {
          FrequentKnMatchResult wrapped;
          wrapped.per_n_sets.push_back(std::move(kn.value().matches));
          wrapped.attributes_retrieved = kn.value().attributes_retrieved;
          res = std::move(wrapped);
        }
      }
      break;
    case RouterOptions::Method::kDiskAuto:
    case RouterOptions::Method::kDiskScan:
    case RouterOptions::Method::kDiskAd:
    case RouterOptions::Method::kDiskVaFile:
      res = engine.DiskFrequentKnMatch(query, n0, n1, k,
                                       ToDiskMethod(options_.method), pc);
      break;
  }
  if (!res.ok()) {
    if (pc != nullptr && pc->tripped()) *governance_trip = true;
    return res.status();
  }

  FrequentKnMatchResult& answer = res.value();
  for (std::vector<Neighbor>& set : answer.per_n_sets) {
    for (Neighbor& nb : set) nb.pid = sh.to_global[nb.pid];
  }
  for (Neighbor& nb : answer.matches) nb.pid = sh.to_global[nb.pid];
  return res;
}

Result<RebalanceReport> ShardRouter::Rebalance() {
  std::unique_lock<std::mutex> lock(set_mu_);
  PartitionPlan plan = plan_;
  lock.unlock();

  RebalanceReport report;
  {
    const std::vector<uint64_t> before = plan.ShardPoints();
    report.max_shard_points_before =
        *std::max_element(before.begin(), before.end());
  }
  std::vector<uint32_t> next =
      BalanceAssignment(plan.partition_points, options_.shards);
  for (size_t p = 0; p < plan.num_partitions; ++p) {
    if (next[p] != plan.shard_of_partition[p]) ++report.partitions_moved;
  }
  plan.shard_of_partition = std::move(next);
  {
    const std::vector<uint64_t> after = plan.ShardPoints();
    report.max_shard_points_after =
        *std::max_element(after.begin(), after.end());
  }

  if (report.partitions_moved != 0) {
    // Build off-lock: concurrent queries keep answering from their
    // pinned snapshot the whole time.
    std::shared_ptr<const ShardSet> next_set = BuildShardSet(db_, plan);
    lock.lock();
    plan_ = std::move(plan);
    set_ = std::move(next_set);
    lock.unlock();
    PublishShardGauges(*Pin());
  }

  rebalances_.fetch_add(1, std::memory_order_relaxed);
  partitions_moved_.fetch_add(report.partitions_moved,
                              std::memory_order_relaxed);
  obs::Cat().shard_rebalances->Add();
  obs::Cat().shard_partitions_moved->Add(report.partitions_moved);
  return report;
}

RouterStats ShardRouter::Stats() const {
  RouterStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.dispatches = dispatches_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.breaker_skips = breaker_skips_.load(std::memory_order_relaxed);
  stats.partial_answers = partial_answers_.load(std::memory_order_relaxed);
  stats.rebalances = rebalances_.load(std::memory_order_relaxed);
  stats.partitions_moved = partitions_moved_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  const std::shared_ptr<const ShardSet> set = Pin();
  stats.shard_points.reserve(set->shards.size());
  for (const auto& sh : set->shards) {
    stats.shard_points.push_back(sh->to_global.size());
  }
  return stats;
}

size_t ShardRouter::shard_size(size_t shard) const {
  const std::shared_ptr<const ShardSet> set = Pin();
  return shard < set->shards.size() ? set->shards[shard]->to_global.size()
                                    : 0;
}

exec::CircuitBreaker::State ShardRouter::breaker_state(size_t shard) const {
  const std::shared_ptr<const ShardSet> set = Pin();
  return shard < set->shards.size() ? set->shards[shard]->breaker.state()
                                    : exec::CircuitBreaker::State::kClosed;
}

SimilarityEngine* ShardRouter::replica_engine(size_t shard,
                                              size_t replica) const {
  const std::shared_ptr<const ShardSet> set = Pin();
  if (shard >= set->shards.size()) return nullptr;
  const Shard& sh = *set->shards[shard];
  if (replica >= sh.replicas.size()) return nullptr;
  return sh.replicas[replica].engine.get();
}

void ShardRouter::EnableCache(cache::CacheConfig config) {
  cache_ = std::make_unique<cache::QueryResultCache>(config);
}

void ShardRouter::DisableCache() { cache_.reset(); }

}  // namespace knmatch::shard

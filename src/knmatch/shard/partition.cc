#include "knmatch/shard/partition.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "knmatch/common/kmeans.h"

namespace knmatch::shard {

namespace {

/// SplitMix64 finalizer — the same mix common/random.h seeds with.
/// Hashing the pid (not the coordinates) keeps the hash partitioner
/// placement-oblivious and O(1) per point.
uint64_t MixPid(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* PartitionerName(Partitioner partitioner) {
  switch (partitioner) {
    case Partitioner::kHash:
      return "hash";
    case Partitioner::kRange:
      return "range";
    case Partitioner::kKMeans:
      return "kmeans";
  }
  return "unknown";
}

Result<Partitioner> ParsePartitioner(std::string_view name) {
  if (name == "hash") return Partitioner::kHash;
  if (name == "range") return Partitioner::kRange;
  if (name == "kmeans") return Partitioner::kKMeans;
  return Status::InvalidArgument("unknown partitioner '" +
                                 std::string(name) +
                                 "' (expected hash, range, or kmeans)");
}

std::vector<uint64_t> PartitionPlan::ShardPoints() const {
  std::vector<uint64_t> points(num_shards, 0);
  for (size_t p = 0; p < num_partitions; ++p) {
    points[shard_of_partition[p]] += partition_points[p];
  }
  return points;
}

PartitionPlan BuildPartitionPlan(const Dataset& db, Partitioner partitioner,
                                 size_t shards, size_t partitions_per_shard,
                                 uint64_t seed) {
  PartitionPlan plan;
  plan.partitioner = partitioner;
  plan.num_shards = shards;
  const size_t c = db.size();
  size_t partitions = shards * std::max<size_t>(partitions_per_shard, 1);
  if (partitions > c && c > 0) partitions = c;
  if (partitions == 0) partitions = 1;
  plan.num_partitions = partitions;
  plan.partition_of.resize(c);

  switch (partitioner) {
    case Partitioner::kHash:
      for (PointId pid = 0; pid < c; ++pid) {
        plan.partition_of[pid] =
            static_cast<uint32_t>(MixPid(pid) % partitions);
      }
      break;
    case Partitioner::kRange: {
      const size_t chunk = (c + partitions - 1) / partitions;
      for (PointId pid = 0; pid < c; ++pid) {
        plan.partition_of[pid] = static_cast<uint32_t>(pid / chunk);
      }
      break;
    }
    case Partitioner::kKMeans: {
      const KMeansResult clusters = KMeans(db, partitions, seed);
      plan.partition_of = clusters.assignment;
      break;
    }
  }

  plan.partition_points.assign(partitions, 0);
  for (PointId pid = 0; pid < c; ++pid) {
    ++plan.partition_points[plan.partition_of[pid]];
  }
  plan.shard_of_partition.resize(partitions);
  for (size_t p = 0; p < partitions; ++p) {
    plan.shard_of_partition[p] = static_cast<uint32_t>(p % shards);
  }
  return plan;
}

std::vector<uint32_t> BalanceAssignment(
    const std::vector<uint64_t>& partition_points, size_t shards) {
  std::vector<uint32_t> order(partition_points.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     return partition_points[a] > partition_points[b];
                   });
  std::vector<uint64_t> load(shards, 0);
  std::vector<uint32_t> assignment(partition_points.size(), 0);
  for (const uint32_t p : order) {
    size_t lightest = 0;
    for (size_t s = 1; s < shards; ++s) {
      if (load[s] < load[lightest]) lightest = s;
    }
    assignment[p] = static_cast<uint32_t>(lightest);
    load[lightest] += partition_points[p];
  }
  return assignment;
}

}  // namespace knmatch::shard

#ifndef KNMATCH_SHARD_PARTITION_H_
#define KNMATCH_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/common/types.h"

namespace knmatch::shard {

/// How points are assigned to partitions (the unit of placement; see
/// PartitionPlan). Answers are bit-identical under every strategy —
/// partitioning only shifts where work and data live (docs/sharding.md
/// compares the trade-offs).
enum class Partitioner {
  /// SplitMix64 of the pid. Size-uniform, placement-oblivious.
  kHash,
  /// Contiguous pid ranges. Preserves insertion locality.
  kRange,
  /// Data-aware: k-means clusters (common/kmeans.h) become partitions,
  /// so co-located points are similar. Cluster sizes are skewed by
  /// nature — the rebalance path exists for exactly this strategy.
  kKMeans,
};

/// The partitioner's CLI/bench name ("hash" / "range" / "kmeans").
const char* PartitionerName(Partitioner partitioner);

/// Parses a CLI name; InvalidArgument on anything unknown.
Result<Partitioner> ParsePartitioner(std::string_view name);

/// The two-level placement map of a sharded dataset: every point maps
/// to one of `num_partitions` virtual partitions (fixed at build time),
/// and every partition maps to a shard. Rebalancing moves whole
/// partitions between shards — the point->partition map never changes,
/// so a rebalance is a pure reassignment plus data movement, never a
/// repartition.
struct PartitionPlan {
  Partitioner partitioner = Partitioner::kHash;
  size_t num_shards = 0;
  size_t num_partitions = 0;
  /// Partition of each point; size = cardinality.
  std::vector<uint32_t> partition_of;
  /// Owning shard of each partition; size = num_partitions.
  std::vector<uint32_t> shard_of_partition;
  /// Points per partition; size = num_partitions.
  std::vector<uint64_t> partition_points;

  uint32_t shard_of(PointId pid) const {
    return shard_of_partition[partition_of[pid]];
  }

  /// Points per shard under the current assignment.
  std::vector<uint64_t> ShardPoints() const;
};

/// Builds the point->partition map for `db` with num_partitions =
/// min(shards * partitions_per_shard, cardinality) and assigns
/// partitions to shards round-robin (partition p -> shard p % S).
/// Round-robin is deliberately placement-naive: with skewed partition
/// sizes (k-means) it leaves shards unbalanced, which is what
/// BalanceAssignment and the router's rebalance path then repair.
/// `seed` feeds the k-means partitioner; hash and range ignore it.
/// Deterministic: same inputs, same plan.
PartitionPlan BuildPartitionPlan(const Dataset& db, Partitioner partitioner,
                                 size_t shards, size_t partitions_per_shard,
                                 uint64_t seed);

/// Balanced partition->shard assignment by longest-processing-time
/// greedy: partitions in descending point count onto the currently
/// lightest shard (ties: lower partition index first, lower shard index
/// wins). Deterministic; returns the new shard_of_partition vector.
std::vector<uint32_t> BalanceAssignment(
    const std::vector<uint64_t>& partition_points, size_t shards);

}  // namespace knmatch::shard

#endif  // KNMATCH_SHARD_PARTITION_H_

#ifndef KNMATCH_SHARD_SHARD_ROUTER_H_
#define KNMATCH_SHARD_SHARD_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "knmatch/cache/query_cache.h"
#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/core/query_context.h"
#include "knmatch/engine.h"
#include "knmatch/exec/circuit_breaker.h"
#include "knmatch/exec/ewma.h"
#include "knmatch/exec/thread_pool.h"
#include "knmatch/shard/partition.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch::shard {

/// Options for a ShardRouter. Defaults give a 4-shard, unreplicated,
/// hash-partitioned, in-memory router with hedging off.
struct RouterOptions {
  /// Shard count S. Each shard holds a horizontal slice of the dataset
  /// behind `replicas` full SimilarityEngines.
  size_t shards = 4;
  /// Replica group size per shard. Each replica is its own engine over
  /// its own DiskSimulator — independent fault domains, so hedging and
  /// failover have somewhere to go.
  size_t replicas = 1;
  /// Virtual partitions per shard (placement granularity; see
  /// PartitionPlan). More partitions = finer rebalancing.
  size_t partitions_per_shard = 8;
  Partitioner partitioner = Partitioner::kHash;
  /// Seed for the k-means partitioner (hash/range ignore it).
  uint64_t seed = 1;
  /// Fan-out worker threads; 0 picks min(shards, hardware). Requests
  /// are capped at the shard count — more workers than shards is waste.
  size_t threads = 0;

  /// Per-shard execution method. kMemoryAd runs the in-memory AD
  /// kernel; the kDisk* methods route through each replica engine's
  /// DiskFrequentKnMatch (kDiskAuto with the engine's own degradation
  /// chain, so an injected fault degrades inside the shard before the
  /// router ever sees it; the explicit disk methods surface faults to
  /// the router, exercising replica failover instead). Every method
  /// computes identical answers. The disk methods reject per-dimension
  /// weights, as the engine's disk path does.
  enum class Method { kMemoryAd, kDiskAuto, kDiskScan, kDiskAd, kDiskVaFile };
  Method method = Method::kMemoryAd;

  /// Hedging: when a shard's EWMA dispatch latency (exec/ewma.h) is at
  /// or above this threshold and the shard has a second replica, the
  /// dispatch is duplicated to the next replica concurrently and the
  /// first usable answer wins (answers are identical; hedging buys
  /// latency and masks a slow or failing primary). 0 disables.
  double hedge_threshold_ms = 0;

  /// Fraction of the caller's remaining deadline granted to each shard
  /// slice, the rest being merge/gather headroom. Slices are absolute:
  /// every shard of one query races the same wall-clock instant.
  double deadline_slice_fraction = 0.9;
  /// Divide the caller's attribute/page budgets evenly across the
  /// non-empty shards (scratch budgets pass through unchanged — each
  /// shard's arena is already proportionally smaller).
  bool split_budgets = true;

  /// When a shard produces no answer (breaker open, every replica
  /// failed, or its slice tripped), answer from the surviving shards
  /// and report the loss in last_dispatch().degradation instead of
  /// failing the query. False surfaces the first shard error.
  bool allow_partial = true;

  /// Per-shard circuit breaker tuning (exec/circuit_breaker.h).
  exec::CircuitBreaker::Options breaker;

  /// Disk model for every replica engine (each builds its own
  /// DiskSimulator from this, lazily).
  DiskConfig disk_config;
};

/// One shard that contributed no answer to a scatter-gather query.
struct ShardFailure {
  uint32_t shard = 0;
  Status status;
};

/// GovernanceTrip-style degradation record for a scatter-gather
/// answer: which shards are missing from it and why. Populated on
/// last_dispatch() whenever a query returns with partial coverage.
struct ShardDegradation {
  /// Shards that produced no answer, ascending by shard index.
  std::vector<ShardFailure> failed;
  /// Non-empty shards that answered.
  size_t shards_answered = 0;
  /// Non-empty shards the query needed.
  size_t shards_total = 0;

  bool partial() const { return !failed.empty(); }
};

/// Per-query dispatch diagnostics, in the mold of the engine's
/// last_disk_method()/last_disk_fallback().
struct DispatchReport {
  /// Shards actually dispatched to (non-empty, breaker allowed).
  size_t shards_dispatched = 0;
  /// Hedged duplicate dispatches issued.
  size_t hedges = 0;
  /// Hedges whose replica finished first with a usable answer.
  size_t hedge_wins = 0;
  /// Failover re-dispatches to further replicas.
  size_t failovers = 0;
  /// Shards skipped because their breaker was open.
  size_t breaker_skips = 0;
  /// Query served from the router's result cache (no fan-out).
  bool cache_hit = false;
  ShardDegradation degradation;
};

/// Lifetime counters, mirrored 1:1 by the knmatch_shard_* metric
/// family (the metric==engine equality tests hold them to each other).
struct RouterStats {
  uint64_t queries = 0;
  uint64_t dispatches = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t failovers = 0;
  uint64_t breaker_skips = 0;
  uint64_t partial_answers = 0;
  uint64_t rebalances = 0;
  uint64_t partitions_moved = 0;
  uint64_t cache_hits = 0;
  /// Points per shard under the current assignment.
  std::vector<uint64_t> shard_points;
};

/// What a Rebalance() call changed.
struct RebalanceReport {
  size_t partitions_moved = 0;
  uint64_t max_shard_points_before = 0;
  uint64_t max_shard_points_after = 0;
};

/// Scatter-gather k-n-match over S shards with replica groups.
///
/// The dataset is split by a PartitionPlan into S shards; each shard
/// is `replicas` full SimilarityEngines over the shard's slice (each
/// with its own fault-injectable DiskSimulator). A query fans out
/// across the shards on a fixed ThreadPool, each shard answers its
/// local top-min(k, |shard|) under a per-shard governance slice, and
/// the partials merge exactly through the global n-match-difference
/// heap (core/answer_merge.h) — bit-identical to one unsharded engine
/// over the whole dataset (see docs/sharding.md for the argument and
/// the boundary-tie caveat).
///
/// Resilience, layered per shard on the existing primitives:
///  - a CircuitBreaker per shard (open shard => skipped, reported);
///  - EWMA-triggered hedged dispatch to the next replica;
///  - read failover across the replica group on kDataLoss/kUnavailable
///    (never on governance trips — no retry amplification);
///  - partial answers from surviving shards with a ShardDegradation
///    record when allow_partial.
///
/// Rebalance() moves whole partitions between shards under snapshot
/// reads: queries pin the current immutable shard set via shared_ptr
/// and keep answering while the rebalanced set is built, then the
/// pointer swaps. Answers are placement-invariant, so the router's
/// cache epoch survives a rebalance.
///
/// Thread-safety: queries are internally serialized on one mutex (like
/// the engine's batch entry points) and may run concurrently with
/// Rebalance(). EnableCache/DisableCache/replica_engine() require
/// external quiescence, like the engine's setup-time methods.
class ShardRouter {
 public:
  /// Copies (slices of) `db` into the shards. The source dataset is
  /// not retained.
  explicit ShardRouter(const Dataset& db, RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Scatter-gather k-n-match. `ctx` governs the whole query; each
  /// shard runs under a slice of its deadline/budgets (see
  /// RouterOptions). On a full-coverage answer last_dispatch()
  /// .degradation.partial() is false; under allow_partial a shard
  /// failure degrades coverage instead of failing the call.
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k,
                                std::span<const Value> weights = {},
                                QueryContext* ctx = nullptr) const;

  /// Scatter-gather frequent k-n-match; as KnMatch.
  Result<FrequentKnMatchResult> FrequentKnMatch(
      std::span<const Value> query, size_t n0, size_t n1, size_t k,
      std::span<const Value> weights = {}, QueryContext* ctx = nullptr) const;

  /// Recomputes a balanced partition->shard assignment (longest-
  /// processing-time greedy) and atomically swaps in a freshly built
  /// shard set. In-flight and concurrent queries keep reading their
  /// pinned snapshot. Replica breakers/EWMAs restart fresh; attached
  /// fault injectors do not carry over (re-attach via replica_engine).
  Result<RebalanceReport> Rebalance();

  /// Diagnostics for the most recent query (serialized with queries,
  /// like the engine's last_disk_* state).
  const DispatchReport& last_dispatch() const { return last_; }

  /// Lifetime counters plus current shard sizes.
  RouterStats Stats() const;

  const RouterOptions& options() const { return options_; }
  size_t num_shards() const { return options_.shards; }
  size_t num_replicas() const { return options_.replicas; }
  /// Points currently placed on `shard`.
  size_t shard_size(size_t shard) const;
  /// Breaker state of `shard` in the current set.
  exec::CircuitBreaker::State breaker_state(size_t shard) const;

  /// One replica's engine in the current shard set — for tests and
  /// fault tooling (SetFaultInjector). The pointer is invalidated by
  /// Rebalance(); requires external quiescence.
  SimilarityEngine* replica_engine(size_t shard, size_t replica) const;

  /// Router-level result cache over full-coverage answers (partial
  /// answers are never cached). Keys carry the router's own result
  /// epoch (cache::NextResultEpoch), so a cache may be observed across
  /// engines and routers without aliasing.
  void EnableCache(cache::CacheConfig config = cache::CacheConfig());
  void DisableCache();
  cache::QueryResultCache* cache() const { return cache_.get(); }
  uint64_t cache_epoch() const { return cache_epoch_; }

 private:
  struct Replica;
  struct Shard;
  struct ShardSet;
  struct ShardOutcome;

  /// The shared scatter-gather path under both public entry points.
  Result<FrequentKnMatchResult> RunQuery(std::span<const Value> query,
                                         size_t n0, size_t n1, size_t k,
                                         std::span<const Value> weights,
                                         QueryContext* ctx,
                                         bool frequent) const;

  /// One shard's dispatch: breaker consult, primary (+ optional hedged
  /// replica) attempt, failover walk. Runs on a fan-out worker.
  void DispatchShard(const ShardSet& set, size_t shard_index,
                     std::span<const Value> query, size_t n0, size_t n1,
                     size_t k, std::span<const Value> weights, bool frequent,
                     bool has_deadline,
                     QueryContext::Clock::time_point slice_deadline,
                     const QueryBudgets& budgets,
                     const std::shared_ptr<std::atomic<bool>>& cancel,
                     ShardOutcome* out) const;

  /// One replica attempt; translates answer pids to global ids.
  Result<FrequentKnMatchResult> RunReplica(
      const Shard& sh, size_t replica_index, std::span<const Value> query,
      size_t n0, size_t n1, size_t k, std::span<const Value> weights,
      bool frequent, bool has_deadline,
      QueryContext::Clock::time_point slice_deadline,
      const QueryBudgets& budgets,
      const std::shared_ptr<std::atomic<bool>>& cancel,
      bool* governance_trip) const;

  /// Builds a shard set for the given partition->shard assignment.
  std::shared_ptr<const ShardSet> BuildShardSet(
      const Dataset& db, const PartitionPlan& plan) const;

  std::shared_ptr<const ShardSet> Pin() const;
  void PublishShardGauges(const ShardSet& set) const;

  RouterOptions options_;
  PartitionPlan plan_;                 // guarded by set_mu_
  /// Rebalance rebuilds shards from this flat copy of the dataset.
  Dataset db_;
  std::unique_ptr<cache::QueryResultCache> cache_;
  uint64_t cache_epoch_ = 0;

  mutable std::mutex set_mu_;          // guards set_ swaps and plan_
  std::shared_ptr<const ShardSet> set_;

  mutable std::mutex query_mu_;        // serializes whole queries
  mutable std::unique_ptr<exec::ThreadPool> pool_;
  mutable DispatchReport last_;

  // Lifetime counters (relaxed; read by Stats() and the obs family).
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> dispatches_{0};
  mutable std::atomic<uint64_t> hedges_{0};
  mutable std::atomic<uint64_t> hedge_wins_{0};
  mutable std::atomic<uint64_t> failovers_{0};
  mutable std::atomic<uint64_t> breaker_skips_{0};
  mutable std::atomic<uint64_t> partial_answers_{0};
  mutable std::atomic<uint64_t> rebalances_{0};
  mutable std::atomic<uint64_t> partitions_moved_{0};
  mutable std::atomic<uint64_t> cache_hits_{0};
};

}  // namespace knmatch::shard

#endif  // KNMATCH_SHARD_SHARD_ROUTER_H_

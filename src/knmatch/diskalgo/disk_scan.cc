#include "knmatch/diskalgo/disk_scan.h"

#include <cmath>
#include <vector>

#include "knmatch/common/top_k.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/core/query_context.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

namespace {

// Scan cost is fixed at c*d attributes per query (Sec. 5's baseline);
// charge it to the scan's own algo label and the installed trace. A
// governed scan that trips early charges only the rows it read.
void RecordScanCost(uint64_t attributes) {
  obs::Cat().attrs_scan->Add(attributes);
  if (obs::QueryTrace* trace = obs::CurrentTrace()) {
    trace->counters().attributes_retrieved += attributes;
  }
}

// Rows between governance rechecks. Shorter than the pop stride: a row
// costs d attribute reads, so this still rechecks every few thousand
// attributes.
constexpr uint64_t kRowStride = 64;

using Accumulator = BoundedTopK<PointId, Value, PointId>;

// Snapshots running top-k accumulators into the context's trip record
// and charges the partially-scanned cost.
Status HarvestScanTrip(QueryContext* ctx, std::span<Accumulator> per_n,
                       uint64_t rows_seen, size_t dims) {
  const uint64_t attributes = rows_seen * dims;
  std::vector<std::vector<Neighbor>> partial(per_n.size());
  for (size_t i = 0; i < per_n.size(); ++i) {
    for (auto& e : per_n[i].TakeSorted()) {
      partial[i].push_back(Neighbor{e.item, e.score});
    }
  }
  ctx->trip().attributes_retrieved = attributes;
  ctx->StorePartialSets(&partial);
  RecordScanCost(attributes);
  return ctx->trip_status();
}

}  // namespace

Result<KnMatchResult> DiskScan::KnMatch(std::span<const Value> query,
                                        size_t n, size_t k,
                                        QueryContext* ctx) const {
  Status s = ValidateMatchParams(rows_.size(), rows_.dims(), query.size(), n,
                                 n, k);
  if (!s.ok()) return s;

  const bool governed = ctx != nullptr && ctx->governed();
  if (governed) ctx->ArmPages(rows_.disk());
  const size_t stream = rows_.OpenStream();
  BoundedTopK<PointId, Value, PointId> top(k);
  std::vector<Value> diffs;
  uint64_t rows_seen = 0;
  Status io = rows_.ForEachRowWhile(
      stream, [&](PointId pid, std::span<const Value> p) {
        SortedAbsDifferences(p, query, &diffs);
        top.Offer(diffs[n - 1], pid, pid);
        ++rows_seen;
        if (governed && rows_seen % kRowStride == 0) {
          return ctx->Recheck(rows_seen * rows_.dims(), 0);
        }
        return true;
      });
  if (!io.ok()) return io;
  if (governed && ctx->tripped()) {
    return HarvestScanTrip(ctx, {&top, 1}, rows_seen, rows_.dims());
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(rows_.size()) * rows_.dims();
  RecordScanCost(result.attributes_retrieved);
  return result;
}

Result<FrequentKnMatchResult> DiskScan::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  Status s = ValidateMatchParams(rows_.size(), rows_.dims(), query.size(),
                                 n0, n1, k);
  if (!s.ok()) return s;

  std::vector<Accumulator> per_n;
  per_n.reserve(n1 - n0 + 1);
  for (size_t n = n0; n <= n1; ++n) per_n.emplace_back(k);

  const bool governed = ctx != nullptr && ctx->governed();
  if (governed) ctx->ArmPages(rows_.disk());
  const size_t stream = rows_.OpenStream();
  std::vector<Value> diffs;
  uint64_t rows_seen = 0;
  Status io = rows_.ForEachRowWhile(
      stream, [&](PointId pid, std::span<const Value> p) {
        SortedAbsDifferences(p, query, &diffs);
        for (size_t n = n0; n <= n1; ++n) {
          per_n[n - n0].Offer(diffs[n - 1], pid, pid);
        }
        ++rows_seen;
        if (governed && rows_seen % kRowStride == 0) {
          return ctx->Recheck(rows_seen * rows_.dims(), 0);
        }
        return true;
      });
  if (!io.ok()) return io;
  if (governed && ctx->tripped()) {
    return HarvestScanTrip(ctx, per_n, rows_seen, rows_.dims());
  }

  FrequentKnMatchResult result;
  result.per_n_sets.resize(per_n.size());
  for (size_t i = 0; i < per_n.size(); ++i) {
    for (auto& e : per_n[i].TakeSorted()) {
      result.per_n_sets[i].push_back(Neighbor{e.item, e.score});
    }
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(rows_.size()) * rows_.dims();
  RecordScanCost(result.attributes_retrieved);
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result);
  }
  return result;
}

Result<std::vector<FrequentKnMatchResult>> DiskScan::FrequentKnMatchBatch(
    std::span<const std::vector<Value>> queries, size_t n0, size_t n1,
    size_t k) const {
  for (const auto& q : queries) {
    Status s = ValidateMatchParams(rows_.size(), rows_.dims(), q.size(),
                                   n0, n1, k);
    if (!s.ok()) return s;
  }

  using Accumulator = BoundedTopK<PointId, Value, PointId>;
  const size_t range = n1 - n0 + 1;
  std::vector<std::vector<Accumulator>> per_query(queries.size());
  for (auto& per_n : per_query) {
    per_n.reserve(range);
    for (size_t i = 0; i < range; ++i) per_n.emplace_back(k);
  }

  const size_t stream = rows_.OpenStream();
  std::vector<Value> diffs;
  Status io =
      rows_.ForEachRow(stream, [&](PointId pid, std::span<const Value> p) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          SortedAbsDifferences(p, queries[qi], &diffs);
          for (size_t n = n0; n <= n1; ++n) {
            per_query[qi][n - n0].Offer(diffs[n - 1], pid, pid);
          }
        }
      });
  if (!io.ok()) return io;

  std::vector<FrequentKnMatchResult> results(queries.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    results[qi].per_n_sets.resize(range);
    for (size_t i = 0; i < range; ++i) {
      for (auto& e : per_query[qi][i].TakeSorted()) {
        results[qi].per_n_sets[i].push_back(Neighbor{e.item, e.score});
      }
    }
    results[qi].attributes_retrieved =
        static_cast<uint64_t>(rows_.size()) * rows_.dims();
    RecordScanCost(results[qi].attributes_retrieved);
    RankByFrequency(k, &results[qi]);
  }
  return results;
}

Result<KnMatchResult> DiskScan::KnnEuclidean(std::span<const Value> query,
                                             size_t k,
                                             QueryContext* ctx) const {
  Status s = ValidateMatchParams(rows_.size(), rows_.dims(), query.size(), 1,
                                 1, k);
  if (!s.ok()) return s;

  const bool governed = ctx != nullptr && ctx->governed();
  if (governed) ctx->ArmPages(rows_.disk());
  const size_t stream = rows_.OpenStream();
  BoundedTopK<PointId, Value, PointId> top(k);
  uint64_t rows_seen = 0;
  Status io = rows_.ForEachRowWhile(
      stream, [&](PointId pid, std::span<const Value> p) {
        Value sum = 0;
        for (size_t i = 0; i < p.size(); ++i) {
          const Value diff = p[i] - query[i];
          sum += diff * diff;
        }
        top.Offer(std::sqrt(sum), pid, pid);
        ++rows_seen;
        if (governed && rows_seen % kRowStride == 0) {
          return ctx->Recheck(rows_seen * rows_.dims(), 0);
        }
        return true;
      });
  if (!io.ok()) return io;
  if (governed && ctx->tripped()) {
    return HarvestScanTrip(ctx, {&top, 1}, rows_seen, rows_.dims());
  }

  KnMatchResult result;
  for (auto& e : top.TakeSorted()) {
    result.matches.push_back(Neighbor{e.item, e.score});
  }
  result.attributes_retrieved =
      static_cast<uint64_t>(rows_.size()) * rows_.dims();
  RecordScanCost(result.attributes_retrieved);
  return result;
}

}  // namespace knmatch

#include "knmatch/diskalgo/disk_ad.h"

#include <utility>
#include <vector>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/query_context.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

namespace {

/// AD-engine accessor over the paged column store. One I/O stream per
/// direction cursor (2 per dimension), identified by the engine-supplied
/// slot, so each direction's page buffer and sequential-run detection
/// are independent.
class DiskColumnAccessor {
 public:
  explicit DiskColumnAccessor(const ColumnStore& columns)
      : columns_(columns) {
    streams_.reserve(2 * columns.dims());
    for (size_t i = 0; i < 2 * columns.dims(); ++i) {
      streams_.push_back(columns.OpenStream());
    }
  }

  size_t dims() const { return columns_.dims(); }
  size_t column_size() const { return columns_.column_size(); }

  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t slot) {
    Result<ColumnEntry> e = columns_.ReadEntry(streams_[slot], dim, idx);
    if (!e.ok()) {
      status_ = e.status();
      return ColumnEntry{};  // the engine discards it once status() trips
    }
    return e.value();
  }

  /// Kernel block refill: page-granular — ColumnStore bounds the run to
  /// the page holding `idx`, so the one charged ReadPage here costs
  /// exactly what the per-entry path's first read of that page would,
  /// and every further entry served is one the per-entry path would
  /// have re-read from the same page for free.
  size_t ReadRun(size_t dim, size_t idx, size_t len, uint32_t slot,
                 Value* values, PointId* pids) {
    Result<size_t> n = columns_.ReadRun(streams_[slot], dim, idx, len,
                                        slot % 2 == 0, values, pids);
    if (!n.ok()) {
      status_ = n.status();
      return 0;
    }
    return n.value();
  }

  size_t LocateLowerBound(size_t dim, Value v) const {
    return columns_.LowerBound(dim, v);
  }

  /// First read failure, latched; the engine stops once this is non-OK.
  const Status& status() const { return status_; }

 private:
  const ColumnStore& columns_;
  std::vector<size_t> streams_;
  Status status_;
};

}  // namespace

Result<KnMatchResult> DiskAdSearcher::KnMatch(std::span<const Value> query,
                                              size_t n, size_t k,
                                              QueryContext* ctx) const {
  Status s = ValidateMatchParams(columns_.column_size(), columns_.dims(),
                                 query.size(), n, n, k);
  if (!s.ok()) return s;

  if (ctx != nullptr) ctx->ArmPages(columns_.disk());
  DiskColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n, n, k, {}, nullptr, ctx);
  obs::Cat().attrs_ad_disk->Add(out.attributes_retrieved);
  obs::Cat().pops_ad_disk->Add(out.heap_pops);
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();
  if (!acc.status().ok()) return acc.status();

  KnMatchResult result;
  result.matches = std::move(out.per_n_sets[0]);
  result.attributes_retrieved = out.attributes_retrieved;
  return result;
}

Result<FrequentKnMatchResult> DiskAdSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  Status s = ValidateMatchParams(columns_.column_size(), columns_.dims(),
                                 query.size(), n0, n1, k);
  if (!s.ok()) return s;

  if (ctx != nullptr) ctx->ArmPages(columns_.disk());
  DiskColumnAccessor acc(columns_);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n0, n1, k, {}, nullptr, ctx);
  obs::Cat().attrs_ad_disk->Add(out.attributes_retrieved);
  obs::Cat().pops_ad_disk->Add(out.heap_pops);
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();
  if (!acc.status().ok()) return acc.status();

  FrequentKnMatchResult result;
  result.per_n_sets = std::move(out.per_n_sets);
  result.attributes_retrieved = out.attributes_retrieved;
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result);
  }
  return result;
}

}  // namespace knmatch

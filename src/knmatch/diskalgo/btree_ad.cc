#include "knmatch/diskalgo/btree_ad.h"

#include <utility>
#include <vector>

#include "knmatch/core/ad_engine.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/core/query_context.h"
#include "knmatch/core/nmatch_naive.h"
#include "knmatch/core/sorted_columns.h"
#include "knmatch/obs/catalog.h"
#include "knmatch/obs/trace.h"

namespace knmatch {

BTreeColumns::BTreeColumns(const Dataset& db, DiskSimulator* disk) {
  // Reuse the in-memory sort, then bulk load each tree. BulkLoad wants
  // packed (value, pid) entries, so reassemble them from the SoA
  // columns into a per-dimension staging vector (build-time only).
  SortedColumns sorted(db);
  trees_.reserve(db.dims());
  std::vector<ColumnEntry> column(db.size());
  for (size_t dim = 0; dim < db.dims(); ++dim) {
    for (size_t i = 0; i < column.size(); ++i) {
      column[i] = sorted.entry(dim, i);
    }
    auto tree = std::make_unique<BPlusTree>(disk);
    tree->BulkLoad(column);
    trees_.push_back(std::move(tree));
  }
}

Status BTreeColumns::InsertPoint(PointId pid,
                                 std::span<const Value> coords) {
  assert(coords.size() == trees_.size());
  for (size_t dim = 0; dim < trees_.size(); ++dim) {
    Status s = trees_[dim]->Insert(ColumnEntry{coords[dim], pid});
    if (!s.ok()) return s;
  }
  return Status::OK();
}

namespace {

/// AD-engine accessor over per-dimension B+-tree columns. Each cursor
/// direction owns a tree iterator and an I/O stream; the engine's
/// strictly sequential per-slot access pattern (one step outward per
/// refill) maps to Prev()/Next() leaf walks.
///
/// `Columns` is BTreeColumns (live trees) or SnapshotColumns (frozen
/// epoch of the ingest index) — both expose dims()/column_size() and a
/// tree(dim) whose seeks and iterators share one interface.
template <typename Columns>
class BTreeColumnAccessor {
 public:
  BTreeColumnAccessor(const Columns& columns,
                      std::span<const Value> query)
      : columns_(columns),
        query_(query),
        cursors_(2 * columns.dims()) {}

  size_t dims() const { return columns_.dims(); }
  size_t column_size() const { return columns_.column_size(); }
  size_t pid_bound() const {
    if constexpr (requires { columns_.pid_bound(); }) {
      return columns_.pid_bound();
    } else {
      return columns_.column_size();
    }
  }

  ColumnEntry ReadEntry(size_t dim, size_t idx, uint32_t slot) {
    Cursor& cursor = cursors_[slot];
    if (!cursor.started) {
      cursor.started = true;
      cursor.stream = columns_.tree(dim).OpenStream();
      cursor.it = slot % 2 == 0
                      ? columns_.tree(dim).SeekBefore(cursor.stream,
                                                      query_[dim])
                      : columns_.tree(dim).SeekLowerBound(cursor.stream,
                                                          query_[dim]);
    } else {
      if (slot % 2 == 0) {
        cursor.it.Prev();
      } else {
        cursor.it.Next();
      }
    }
    if (!cursor.it.status().ok()) {
      status_ = cursor.it.status();
      return ColumnEntry{};  // discarded once the engine sees status()
    }
    assert(cursor.it.Valid() && "engine asked past the column end");
    (void)idx;
    return cursor.it.Get();
  }

  size_t LocateLowerBound(size_t dim, Value v) {
    // A real root-to-leaf index traversal, charged to a per-query
    // locate stream (unlike the ColumnStore's free in-memory
    // directory).
    if (locate_stream_ == kNoStream) {
      locate_stream_ = columns_.tree(dim).OpenStream();
    }
    Result<size_t> rank = columns_.tree(dim).RankOf(locate_stream_, v);
    if (!rank.ok()) {
      status_ = rank.status();
      return 0;
    }
    return rank.value();
  }

  /// First traversal failure, latched; the engine stops once non-OK.
  const Status& status() const { return status_; }

 private:
  static constexpr size_t kNoStream = static_cast<size_t>(-1);
  struct Cursor {
    bool started = false;
    size_t stream = 0;
    BPlusTree::Iterator it;
  };
  const Columns& columns_;
  std::span<const Value> query_;
  std::vector<Cursor> cursors_;
  size_t locate_stream_ = kNoStream;
  Status status_;
};

/// Shared implementation of the two public searchers over either
/// columns type.
template <typename Columns>
Result<KnMatchResult> KnMatchOver(const Columns& columns,
                                  std::span<const Value> query, size_t n,
                                  size_t k, QueryContext* ctx) {
  Status s = ValidateMatchParams(columns.column_size(), columns.dims(),
                                 query.size(), n, n, k);
  if (!s.ok()) return s;

  if (ctx != nullptr) ctx->ArmPages(columns.tree(0).disk());
  BTreeColumnAccessor<Columns> acc(columns, query);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n, n, k, {}, nullptr, ctx);
  obs::Cat().attrs_ad_btree->Add(out.attributes_retrieved);
  obs::Cat().pops_ad_btree->Add(out.heap_pops);
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();
  if (!acc.status().ok()) return acc.status();

  KnMatchResult result;
  result.matches = std::move(out.per_n_sets[0]);
  result.attributes_retrieved = out.attributes_retrieved;
  return result;
}

template <typename Columns>
Result<FrequentKnMatchResult> FrequentKnMatchOver(
    const Columns& columns, std::span<const Value> query, size_t n0,
    size_t n1, size_t k, QueryContext* ctx) {
  Status s = ValidateMatchParams(columns.column_size(), columns.dims(),
                                 query.size(), n0, n1, k);
  if (!s.ok()) return s;

  if (ctx != nullptr) ctx->ArmPages(columns.tree(0).disk());
  BTreeColumnAccessor<Columns> acc(columns, query);
  internal::AdOutput out =
      internal::RunAdSearch(acc, query, n0, n1, k, {}, nullptr, ctx);
  obs::Cat().attrs_ad_btree->Add(out.attributes_retrieved);
  obs::Cat().pops_ad_btree->Add(out.heap_pops);
  if (ctx != nullptr && ctx->tripped()) return ctx->trip_status();
  if (!acc.status().ok()) return acc.status();

  FrequentKnMatchResult result;
  result.per_n_sets = std::move(out.per_n_sets);
  result.attributes_retrieved = out.attributes_retrieved;
  {
    obs::TraceSpan span(obs::Phase::kRank);
    RankByFrequency(k, &result);
  }
  return result;
}

}  // namespace

Result<KnMatchResult> BTreeAdSearcher::KnMatch(std::span<const Value> query,
                                               size_t n, size_t k,
                                               QueryContext* ctx) const {
  return KnMatchOver(columns_, query, n, k, ctx);
}

Result<FrequentKnMatchResult> BTreeAdSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  return FrequentKnMatchOver(columns_, query, n0, n1, k, ctx);
}

Result<KnMatchResult> SnapshotAdSearcher::KnMatch(
    std::span<const Value> query, size_t n, size_t k,
    QueryContext* ctx) const {
  return KnMatchOver(columns_, query, n, k, ctx);
}

Result<FrequentKnMatchResult> SnapshotAdSearcher::FrequentKnMatch(
    std::span<const Value> query, size_t n0, size_t n1, size_t k,
    QueryContext* ctx) const {
  return FrequentKnMatchOver(columns_, query, n0, n1, k, ctx);
}

}  // namespace knmatch

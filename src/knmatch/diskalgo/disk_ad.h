#ifndef KNMATCH_DISKALGO_DISK_AD_H_
#define KNMATCH_DISKALGO_DISK_AD_H_

#include <span>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/column_store.h"

namespace knmatch {

class QueryContext;

/// Disk-based AD algorithm (Section 4.1): the FKNMatchAD control loop
/// over the paged, sorted column store. Every cursor direction gets its
/// own I/O stream, so consecutive reads within a direction are
/// page-buffered and forward runs are sequential — the property the
/// paper highlights ("FKNMatchAD accesses the pages sequentially when
/// searching forwards").
///
/// Page-access counts and modelled I/O time are read off the shared
/// DiskSimulator by the caller (reset its counters around a query).
class DiskAdSearcher {
 public:
  /// Searches `columns`; the store must outlive the searcher.
  explicit DiskAdSearcher(const ColumnStore& columns) : columns_(columns) {}

  /// Disk-based KNMatchAD. Optional `ctx` governs the query (deadline,
  /// cancellation, attribute/page/scratch budgets); on a trip the
  /// search unwinds and returns the context's typed trip status, with
  /// the partial result in ctx->trip().
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k, QueryContext* ctx = nullptr) const;

  /// Disk-based FKNMatchAD; `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k,
                                                QueryContext* ctx =
                                                    nullptr) const;

 private:
  const ColumnStore& columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_DISKALGO_DISK_AD_H_

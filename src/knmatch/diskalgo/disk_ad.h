#ifndef KNMATCH_DISKALGO_DISK_AD_H_
#define KNMATCH_DISKALGO_DISK_AD_H_

#include <span>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/column_store.h"

namespace knmatch {

/// Disk-based AD algorithm (Section 4.1): the FKNMatchAD control loop
/// over the paged, sorted column store. Every cursor direction gets its
/// own I/O stream, so consecutive reads within a direction are
/// page-buffered and forward runs are sequential — the property the
/// paper highlights ("FKNMatchAD accesses the pages sequentially when
/// searching forwards").
///
/// Page-access counts and modelled I/O time are read off the shared
/// DiskSimulator by the caller (reset its counters around a query).
class DiskAdSearcher {
 public:
  /// Searches `columns`; the store must outlive the searcher.
  explicit DiskAdSearcher(const ColumnStore& columns) : columns_(columns) {}

  /// Disk-based KNMatchAD.
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k) const;

  /// Disk-based FKNMatchAD.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k) const;

 private:
  const ColumnStore& columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_DISKALGO_DISK_AD_H_

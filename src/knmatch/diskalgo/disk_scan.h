#ifndef KNMATCH_DISKALGO_DISK_SCAN_H_
#define KNMATCH_DISKALGO_DISK_SCAN_H_

#include <span>

#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/row_store.h"

namespace knmatch {

class QueryContext;

/// Disk-based sequential-scan competitors: read the whole row file once
/// (sequential I/O) and evaluate the query on every point. These are the
/// "scan" reference lines in Figures 10-15.
class DiskScan {
 public:
  /// Scans `rows`; the store must outlive the scanner.
  explicit DiskScan(const RowStore& rows) : rows_(rows) {}

  /// Sequential-scan k-n-match. Optional `ctx` governs the query
  /// (deadline, cancellation, attribute/page budgets), checked once
  /// per row-batch; on a trip the scan stops reading pages and returns
  /// the context's typed trip status, with the rows-seen-so-far top-k
  /// as the partial result in ctx->trip().
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k, QueryContext* ctx = nullptr) const;

  /// Sequential-scan frequent k-n-match over [n0, n1]; `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k,
                                                QueryContext* ctx =
                                                    nullptr) const;

  /// Answers a batch of frequent k-n-match queries in ONE pass over the
  /// row file: the scan's dominant cost (reading every page) is paid
  /// once and amortized over the whole batch — the standard
  /// shared-scan optimization, and the fair way to compare a scan
  /// against indexes under concurrent workloads.
  Result<std::vector<FrequentKnMatchResult>> FrequentKnMatchBatch(
      std::span<const std::vector<Value>> queries, size_t n0, size_t n1,
      size_t k) const;

  /// Sequential-scan exact kNN under the Euclidean distance (used by the
  /// effectiveness comparisons; shares the same I/O profile as the
  /// k-n-match scan); `ctx` as on KnMatch.
  Result<KnMatchResult> KnnEuclidean(std::span<const Value> query, size_t k,
                                     QueryContext* ctx = nullptr) const;

 private:
  const RowStore& rows_;
};

}  // namespace knmatch

#endif  // KNMATCH_DISKALGO_DISK_SCAN_H_

#ifndef KNMATCH_DISKALGO_BTREE_AD_H_
#define KNMATCH_DISKALGO_BTREE_AD_H_

#include <memory>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/bplus_tree.h"

namespace knmatch {

class QueryContext;

/// One B+-tree per dimension — the indexed disk organization a
/// production deployment would maintain instead of rebuilding sorted
/// runs (ColumnStore) offline: inserts keep the columns current, and
/// lower-bound seeks cost a root-to-leaf traversal instead of an
/// in-memory directory lookup.
class BTreeColumns {
 public:
  /// Bulk loads one tree per dimension of `db`.
  BTreeColumns(const Dataset& db, DiskSimulator* disk);

  /// Dimensionality d.
  size_t dims() const { return trees_.size(); }
  /// Cardinality c.
  size_t column_size() const {
    return trees_.empty() ? 0 : trees_[0]->size();
  }

  /// The tree indexing dimension `dim`.
  const BPlusTree& tree(size_t dim) const { return *trees_[dim]; }
  BPlusTree& tree(size_t dim) { return *trees_[dim]; }

  /// Reflects the insertion of a new point (its id is the new
  /// cardinality) across all dimension trees. Stops at the first tree
  /// whose descent fails; earlier dimensions stay inserted, so treat a
  /// failure as grounds for a rebuild.
  Status InsertPoint(PointId pid, std::span<const Value> coords);

 private:
  std::vector<std::unique_ptr<BPlusTree>> trees_;
};

/// The AD algorithm driven by B+-tree cursors: identical answers and
/// attribute counts to the ColumnStore-based DiskAdSearcher, with index
/// traversals charged per query. The ablation bench compares the two
/// disk organizations.
class BTreeAdSearcher {
 public:
  explicit BTreeAdSearcher(const BTreeColumns& columns)
      : columns_(columns) {}

  /// B+-tree-backed KNMatchAD. Optional `ctx` governs the query
  /// (deadline, cancellation, budgets); on a trip the search unwinds
  /// and returns the context's typed trip status, with the partial
  /// result in ctx->trip().
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k, QueryContext* ctx = nullptr) const;

  /// B+-tree-backed FKNMatchAD; `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k,
                                                QueryContext* ctx =
                                                    nullptr) const;

 private:
  const BTreeColumns& columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_DISKALGO_BTREE_AD_H_

#ifndef KNMATCH_DISKALGO_BTREE_AD_H_
#define KNMATCH_DISKALGO_BTREE_AD_H_

#include <algorithm>
#include <memory>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/core/match_types.h"
#include "knmatch/storage/bplus_tree.h"

namespace knmatch {

class QueryContext;

/// One B+-tree per dimension — the indexed disk organization a
/// production deployment would maintain instead of rebuilding sorted
/// runs (ColumnStore) offline: inserts keep the columns current, and
/// lower-bound seeks cost a root-to-leaf traversal instead of an
/// in-memory directory lookup.
class BTreeColumns {
 public:
  /// Bulk loads one tree per dimension of `db`.
  BTreeColumns(const Dataset& db, DiskSimulator* disk);

  /// Dimensionality d.
  size_t dims() const { return trees_.size(); }
  /// Cardinality c.
  size_t column_size() const {
    return trees_.empty() ? 0 : trees_[0]->size();
  }

  /// The tree indexing dimension `dim`.
  const BPlusTree& tree(size_t dim) const { return *trees_[dim]; }
  BPlusTree& tree(size_t dim) { return *trees_[dim]; }

  /// Reflects the insertion of a new point (its id is the new
  /// cardinality) across all dimension trees. Stops at the first tree
  /// whose descent fails; earlier dimensions stay inserted, so treat a
  /// failure as grounds for a rebuild.
  Status InsertPoint(PointId pid, std::span<const Value> coords);

 private:
  std::vector<std::unique_ptr<BPlusTree>> trees_;
};

/// A frozen set of per-dimension B+-tree snapshots (one epoch of the
/// live-ingest index) presented through the same columns interface as
/// BTreeColumns, so the AD accessor can drive either. Cheap to copy.
///
/// Unlike a bulk-loaded store, the live pid space is sparse (erases
/// leave holes, inserts extend it), so the cardinality no longer bounds
/// the ids: `pid_bound` must be an exclusive upper bound on every pid
/// in the trees — it sizes the AD search's per-point appearance table.
class SnapshotColumns {
 public:
  explicit SnapshotColumns(std::vector<BPlusTree::Snapshot> trees,
                           size_t pid_bound = 0)
      : trees_(std::move(trees)), pid_bound_(pid_bound) {}

  size_t dims() const { return trees_.size(); }
  size_t column_size() const {
    return trees_.empty() ? 0 : trees_[0].size();
  }
  size_t pid_bound() const { return std::max(pid_bound_, column_size()); }
  const BPlusTree::Snapshot& tree(size_t dim) const { return trees_[dim]; }

 private:
  std::vector<BPlusTree::Snapshot> trees_;
  size_t pid_bound_ = 0;
};

/// The AD algorithm driven by B+-tree cursors: identical answers and
/// attribute counts to the ColumnStore-based DiskAdSearcher, with index
/// traversals charged per query. The ablation bench compares the two
/// disk organizations.
class BTreeAdSearcher {
 public:
  explicit BTreeAdSearcher(const BTreeColumns& columns)
      : columns_(columns) {}

  /// B+-tree-backed KNMatchAD. Optional `ctx` governs the query
  /// (deadline, cancellation, budgets); on a trip the search unwinds
  /// and returns the context's typed trip status, with the partial
  /// result in ctx->trip().
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k, QueryContext* ctx = nullptr) const;

  /// B+-tree-backed FKNMatchAD; `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k,
                                                QueryContext* ctx =
                                                    nullptr) const;

 private:
  const BTreeColumns& columns_;
};

/// The AD algorithm over one frozen epoch of the live-ingest index:
/// identical semantics to BTreeAdSearcher, but every cursor traverses
/// immutable snapshots, so queries run concurrently with the single
/// writer and answer exactly as a quiesced engine holding the same
/// committed state would. Safe to use from any thread (each call opens
/// its own I/O streams on the thread-safe simulator).
class SnapshotAdSearcher {
 public:
  explicit SnapshotAdSearcher(const SnapshotColumns& columns)
      : columns_(columns) {}

  /// Snapshot-backed KNMatchAD; `ctx` as on BTreeAdSearcher::KnMatch.
  Result<KnMatchResult> KnMatch(std::span<const Value> query, size_t n,
                                size_t k, QueryContext* ctx = nullptr) const;

  /// Snapshot-backed FKNMatchAD; `ctx` as above.
  Result<FrequentKnMatchResult> FrequentKnMatch(std::span<const Value> query,
                                                size_t n0, size_t n1,
                                                size_t k,
                                                QueryContext* ctx =
                                                    nullptr) const;

 private:
  const SnapshotColumns& columns_;
};

}  // namespace knmatch

#endif  // KNMATCH_DISKALGO_BTREE_AD_H_

#ifndef KNMATCH_EVAL_CLASS_STRIP_H_
#define KNMATCH_EVAL_CLASS_STRIP_H_

#include <functional>
#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/baselines/igrid.h"
#include "knmatch/baselines/knn_scan.h"

namespace knmatch::eval {

/// The class-stripping effectiveness protocol of Section 5.1.2 (due to
/// the IGrid paper): strip the class tags, answer similarity queries
/// with each technique, and call an answer "correct" when it belongs to
/// the query point's class. Accuracy is (#correct answers) / (#queries *
/// k) — 100 queries and k = 20 give the paper's divide-by-2000.
struct ClassStripConfig {
  size_t num_queries = 100;
  size_t k = 20;
  uint64_t seed = 123;
};

/// A similarity-search method under evaluation: returns (up to) `k`
/// point ids most similar to `query`, excluding `query_pid` itself.
using SearchFn = std::function<std::vector<PointId>(
    std::span<const Value> query, PointId query_pid, size_t k)>;

/// Runs the protocol on a labelled dataset and returns the accuracy in
/// [0, 1]. Query points are sampled from the dataset without
/// replacement (deterministically from `config.seed`).
double ClassStripAccuracy(const Dataset& db, const ClassStripConfig& config,
                          const SearchFn& method);

/// Adapter: frequent k-n-match over [n0, n1] answered by the AD
/// searcher. The searcher must outlive the returned function.
SearchFn FrequentKnMatchMethod(const AdSearcher& searcher, size_t n0,
                               size_t n1);

/// Adapter: single-n k-n-match answered by the AD searcher.
SearchFn KnMatchMethod(const AdSearcher& searcher, size_t n);

/// Adapter: traditional kNN by sequential scan.
SearchFn KnnMethod(const Dataset& db, Metric metric = Metric::kEuclidean);

/// Adapter: IGrid similarity search. The index must outlive the
/// returned function.
SearchFn IGridMethod(const IGridIndex& index);

}  // namespace knmatch::eval

#endif  // KNMATCH_EVAL_CLASS_STRIP_H_

#include "knmatch/eval/advisor.h"

#include <algorithm>
#include <cmath>

#include "knmatch/common/random.h"
#include "knmatch/core/ad_algorithm.h"
#include "knmatch/core/nmatch.h"
#include "knmatch/storage/row_store.h"
#include "knmatch/vafile/va_file.h"
#include "knmatch/vafile/va_knmatch.h"

namespace knmatch::eval {

struct QueryAdvisor::Impl {
  Dataset sample;
  AdSearcher* searcher = nullptr;
  DiskSimulator sample_disk;  // used only to host the sample VA stores
  RowStore* rows = nullptr;
  VaFile* va = nullptr;
  VaKnMatchSearcher* va_searcher = nullptr;

  ~Impl() {
    delete va_searcher;
    delete va;
    delete rows;
    delete searcher;
  }
};

QueryAdvisor::QueryAdvisor(const Dataset& db, DiskConfig config,
                           size_t sample_size, uint64_t seed)
    : db_(db), config_(config), impl_(new Impl) {
  Rng rng(seed);
  const size_t count = std::min(sample_size, db.size());
  Matrix points(0, 0);
  for (const uint32_t pid : rng.SampleWithoutReplacement(
           static_cast<uint32_t>(db.size()), static_cast<uint32_t>(count))) {
    points.AppendRow(db.point(pid));
  }
  impl_->sample = Dataset(std::move(points));
  impl_->searcher = new AdSearcher(impl_->sample);
  impl_->rows = new RowStore(impl_->sample, &impl_->sample_disk);
  impl_->va = new VaFile(impl_->sample, &impl_->sample_disk, 8);
  impl_->va_searcher = new VaKnMatchSearcher(*impl_->va, *impl_->rows);
}

QueryAdvisor::~QueryAdvisor() { delete impl_; }

Result<CostEstimate> QueryAdvisor::Estimate(std::span<const Value> query,
                                            size_t n0, size_t n1,
                                            size_t k) const {
  Status s =
      ValidateMatchParams(db_.size(), db_.dims(), query.size(), n0, n1, k);
  if (!s.ok()) return s;

  const double c = static_cast<double>(db_.size());
  const double d = static_cast<double>(db_.dims());
  const double sample_c = static_cast<double>(impl_->sample.size());
  // Scale k down to the sample so selectivity is comparable.
  const size_t sample_k = std::clamp<size_t>(
      static_cast<size_t>(std::lround(static_cast<double>(k) * sample_c / c)),
      1, impl_->sample.size());

  CostEstimate estimate;
  auto ad_run = impl_->searcher->FrequentKnMatch(query, n0, n1, sample_k);
  if (!ad_run.ok()) return ad_run.status();
  estimate.ad_attribute_fraction =
      static_cast<double>(ad_run.value().attributes_retrieved) /
      (sample_c * d);

  auto va_run = impl_->va_searcher->FrequentKnMatch(query, n0, n1, sample_k);
  if (!va_run.ok()) return va_run.status();
  estimate.va_refine_fraction =
      static_cast<double>(va_run.value().points_refined) / sample_c;

  // Page geometry of the full database under the advisor's config.
  const double page = static_cast<double>(config_.page_size);
  const double row_pages = std::ceil(
      c / std::floor(page / (d * sizeof(Value))));
  const double col_entries_per_page =
      std::floor(page / (sizeof(Value) + sizeof(PointId)));
  const double col_pages = d * std::ceil(c / col_entries_per_page);
  const double va_row_bytes = std::ceil(d * 8.0 / 8.0);  // 8 bits/dim
  const double va_pages = std::ceil(c / std::floor(page / va_row_bytes));

  const double t_seq = config_.sequential_read_ms / 1000.0;
  const double t_rand = config_.random_read_ms / 1000.0;

  estimate.scan_seconds = row_pages * t_seq + t_rand;
  estimate.ad_seconds = estimate.ad_attribute_fraction * col_pages * t_seq +
                        2 * d * t_rand;
  // Refinement fetches at most one page per candidate, never more than
  // the whole row file.
  const double refine_pages =
      std::min(row_pages, estimate.va_refine_fraction * c);
  estimate.va_seconds = va_pages * t_seq + refine_pages * t_rand;

  estimate.best = SearchMethod::kSequentialScan;
  double best = estimate.scan_seconds;
  if (estimate.ad_seconds < best) {
    best = estimate.ad_seconds;
    estimate.best = SearchMethod::kDiskAd;
  }
  if (estimate.va_seconds < best) {
    estimate.best = SearchMethod::kVaFile;
  }
  return estimate;
}

}  // namespace knmatch::eval

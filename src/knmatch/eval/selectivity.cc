#include "knmatch/eval/selectivity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace knmatch::eval {

namespace {

/// Interpolated CDF of one equi-depth histogram at `v`.
double HistogramCdf(const std::vector<Value>& edges, Value v) {
  const size_t buckets = edges.size() - 1;
  if (v < edges.front()) return 0.0;
  if (v >= edges.back()) return 1.0;
  // Last edge index with edges[i] <= v.
  const size_t idx = static_cast<size_t>(
      std::upper_bound(edges.begin(), edges.end(), v) - edges.begin() - 1);
  const Value lo = edges[idx];
  const Value hi = edges[idx + 1];
  const double within =
      hi > lo ? static_cast<double>((v - lo) / (hi - lo)) : 1.0;
  return (static_cast<double>(idx) + within) / static_cast<double>(buckets);
}

}  // namespace

SelectivityEstimator::SelectivityEstimator(const Dataset& db,
                                           size_t buckets)
    : cardinality_(db.size()) {
  assert(buckets >= 1);
  buckets = std::min(buckets, std::max<size_t>(1, db.size()));
  boundaries_.resize(db.dims());
  std::vector<Value> values(db.size());
  for (size_t dim = 0; dim < db.dims(); ++dim) {
    for (PointId pid = 0; pid < db.size(); ++pid) {
      values[pid] = db.at(pid, dim);
    }
    std::sort(values.begin(), values.end());
    auto& edges = boundaries_[dim];
    edges.resize(buckets + 1);
    for (size_t b = 0; b <= buckets; ++b) {
      const size_t idx = std::min(values.size() - 1,
                                  b * values.size() / buckets);
      edges[b] = values[idx];
    }
    edges.back() = values.back();
  }
}

double SelectivityEstimator::MatchProbability(size_t dim, Value q,
                                              Value eps) const {
  const auto& edges = boundaries_[dim];
  return std::max(0.0, HistogramCdf(edges, q + eps) -
                           HistogramCdf(edges, q - eps));
}

double SelectivityEstimator::TailAtLeast(std::span<const double> m,
                                         size_t n) {
  // Poisson-binomial: probabilities of exactly j matches so far.
  std::vector<double> exactly(m.size() + 1, 0.0);
  exactly[0] = 1.0;
  for (size_t i = 0; i < m.size(); ++i) {
    for (size_t j = i + 1; j-- > 0;) {
      exactly[j + 1] += exactly[j] * m[i];
      exactly[j] *= 1.0 - m[i];
    }
  }
  double tail = 0;
  for (size_t j = n; j < exactly.size(); ++j) tail += exactly[j];
  return std::min(1.0, tail);
}

double SelectivityEstimator::NMatchSelectivity(std::span<const Value> query,
                                               size_t n, Value eps) const {
  assert(query.size() == boundaries_.size());
  assert(n >= 1 && n <= query.size());
  std::vector<double> m(query.size());
  for (size_t dim = 0; dim < query.size(); ++dim) {
    m[dim] = MatchProbability(dim, query[dim], eps);
  }
  return TailAtLeast(m, n);
}

Value SelectivityEstimator::EstimateKnMatchDifference(
    std::span<const Value> query, size_t n, size_t k) const {
  // Bisect the monotone map eps -> expected qualifying points.
  const double target = static_cast<double>(k);
  Value lo = 0;
  // Upper bound: the widest possible per-dimension difference.
  Value hi = 0;
  for (size_t dim = 0; dim < boundaries_.size(); ++dim) {
    const auto& edges = boundaries_[dim];
    hi = std::max(hi, std::max(std::abs(query[dim] - edges.front()),
                               std::abs(edges.back() - query[dim])));
  }
  for (int iter = 0; iter < 50; ++iter) {
    const Value mid = (lo + hi) / 2;
    const double expected =
        NMatchSelectivity(query, n, mid) *
        static_cast<double>(cardinality_);
    if (expected >= target) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

double SelectivityEstimator::EstimateAdAttributeFraction(
    std::span<const Value> query, size_t n, size_t k) const {
  const Value eps = EstimateKnMatchDifference(query, n, k);
  double total = 0;
  for (size_t dim = 0; dim < boundaries_.size(); ++dim) {
    total += MatchProbability(dim, query[dim], eps);
  }
  return total / static_cast<double>(boundaries_.size());
}

}  // namespace knmatch::eval

#include "knmatch/eval/class_strip.h"

#include <algorithm>
#include <cassert>

#include "knmatch/common/random.h"

namespace knmatch::eval {

namespace {

/// Drops `exclude` from `ids` (if present) and truncates to `k`.
std::vector<PointId> WithoutQuery(std::vector<PointId> ids, PointId exclude,
                                  size_t k) {
  std::erase(ids, exclude);
  if (ids.size() > k) ids.resize(k);
  return ids;
}

}  // namespace

double ClassStripAccuracy(const Dataset& db, const ClassStripConfig& config,
                          const SearchFn& method) {
  assert(db.labelled());
  Rng rng(config.seed);
  const size_t num_queries = std::min(config.num_queries, db.size());
  const std::vector<uint32_t> query_pids = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(db.size()), static_cast<uint32_t>(num_queries));

  size_t correct = 0;
  for (const PointId qpid : query_pids) {
    const std::vector<PointId> answers =
        method(db.point(qpid), qpid, config.k);
    assert(answers.size() <= config.k);
    for (const PointId pid : answers) {
      if (db.label(pid) == db.label(qpid)) ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(num_queries * config.k);
}

SearchFn FrequentKnMatchMethod(const AdSearcher& searcher, size_t n0,
                               size_t n1) {
  return [&searcher, n0, n1](std::span<const Value> query, PointId qpid,
                             size_t k) {
    // Ask for one extra answer so dropping the query point still leaves
    // k of them (the query, sampled from the dataset, is always its own
    // best frequent match).
    auto r = searcher.FrequentKnMatch(query, n0, n1, k + 1);
    std::vector<PointId> ids;
    if (r.ok()) {
      for (const Neighbor& nb : r.value().matches) ids.push_back(nb.pid);
    }
    return WithoutQuery(std::move(ids), qpid, k);
  };
}

SearchFn KnMatchMethod(const AdSearcher& searcher, size_t n) {
  return [&searcher, n](std::span<const Value> query, PointId qpid,
                        size_t k) {
    auto r = searcher.KnMatch(query, n, k + 1);
    std::vector<PointId> ids;
    if (r.ok()) {
      for (const Neighbor& nb : r.value().matches) ids.push_back(nb.pid);
    }
    return WithoutQuery(std::move(ids), qpid, k);
  };
}

SearchFn KnnMethod(const Dataset& db, Metric metric) {
  return [&db, metric](std::span<const Value> query, PointId qpid,
                       size_t k) {
    auto r = KnnScan(db, query, k + 1, metric);
    std::vector<PointId> ids;
    if (r.ok()) {
      for (const Neighbor& nb : r.value().matches) ids.push_back(nb.pid);
    }
    return WithoutQuery(std::move(ids), qpid, k);
  };
}

SearchFn IGridMethod(const IGridIndex& index) {
  return [&index](std::span<const Value> query, PointId qpid, size_t k) {
    auto r = index.Search(query, k + 1);
    std::vector<PointId> ids;
    if (r.ok()) {
      for (const Neighbor& nb : r.value().matches) ids.push_back(nb.pid);
    }
    return WithoutQuery(std::move(ids), qpid, k);
  };
}

}  // namespace knmatch::eval

#ifndef KNMATCH_EVAL_EXPERIMENT_H_
#define KNMATCH_EVAL_EXPERIMENT_H_

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/types.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch::eval {

/// Fixed-width text table, used by every bench binary to print
/// paper-style tables and figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision ("0.87", "12.3").
std::string Fmt(double v, int precision = 3);

/// Formats an integer count.
std::string Fmt(uint64_t v);

/// Deterministically samples `count` query point ids from the dataset.
std::vector<PointId> SampleQueryPids(const Dataset& db, size_t count,
                                     uint64_t seed);

/// One measured query against the simulated disk: CPU seconds (wall
/// clock of the compute) plus modelled I/O seconds, with the page
/// counts. Collected by diffing DiskSimulator counters around the call.
struct QueryCost {
  double cpu_seconds = 0;
  double io_seconds = 0;
  uint64_t sequential_pages = 0;
  uint64_t random_pages = 0;

  double total_seconds() const { return cpu_seconds + io_seconds; }
  uint64_t total_pages() const { return sequential_pages + random_pages; }
};

/// Runs `fn` with the simulator's counters reset, returning its cost.
QueryCost MeasureQuery(DiskSimulator* disk,
                       const std::function<void()>& fn);

}  // namespace knmatch::eval

#endif  // KNMATCH_EVAL_EXPERIMENT_H_

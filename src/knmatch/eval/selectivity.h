#ifndef KNMATCH_EVAL_SELECTIVITY_H_
#define KNMATCH_EVAL_SELECTIVITY_H_

#include <span>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"

namespace knmatch::eval {

/// Analytical selectivity estimation for (frequent) k-n-match queries —
/// the optimizer-style alternative to the sampling advisor.
///
/// Per dimension, an equi-depth histogram of the attribute values is
/// kept (classic single-column DB statistics). For a query Q and a
/// threshold eps, the histogram yields `m_i(eps)` — the estimated
/// probability that a random point matches Q in dimension i within
/// eps. Under the independence assumption (the same one every
/// single-column-statistics optimizer makes), the number of matching
/// dimensions of a random point is Poisson-binomial with parameters
/// {m_i}; the probability that a point has n-match difference <= eps
/// is P[#matches >= n], evaluated by the standard O(d^2) dynamic
/// program. Inverting that in eps (it is monotone) estimates the
/// k-n-match difference itself, and from it the AD algorithm's
/// attribute fraction sum_i m_i(eps).
class SelectivityEstimator {
 public:
  /// Builds per-dimension equi-depth histograms with `buckets` buckets.
  explicit SelectivityEstimator(const Dataset& db, size_t buckets = 64);

  /// Estimated probability that a random point matches q_i within eps
  /// in dimension `dim` (i.e., P[|X_i - q_i| <= eps]).
  double MatchProbability(size_t dim, Value q, Value eps) const;

  /// Estimated fraction of points whose n-match difference to `query`
  /// is <= eps (P[at least n of d dimensions match]).
  double NMatchSelectivity(std::span<const Value> query, size_t n,
                           Value eps) const;

  /// Estimated k-n-match difference: the eps at which the expected
  /// number of qualifying points reaches k (bisection on the monotone
  /// selectivity).
  Value EstimateKnMatchDifference(std::span<const Value> query, size_t n,
                                  size_t k) const;

  /// Estimated fraction of all attributes the AD algorithm retrieves
  /// for a k-n-match query: mean_i P[|X_i - q_i| <= eps_hat].
  double EstimateAdAttributeFraction(std::span<const Value> query,
                                     size_t n, size_t k) const;

 private:
  /// P[#matching dimensions >= n] for match probabilities `m` —
  /// Poisson-binomial tail by dynamic programming.
  static double TailAtLeast(std::span<const double> m, size_t n);

  size_t cardinality_;
  /// boundaries_[dim]: buckets+1 equi-depth edges.
  std::vector<std::vector<Value>> boundaries_;
};

}  // namespace knmatch::eval

#endif  // KNMATCH_EVAL_SELECTIVITY_H_

#include "knmatch/eval/experiment.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>

#include "knmatch/common/random.h"
#include "knmatch/common/stats.h"

namespace knmatch::eval {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t i = 0; i < row.size(); ++i) {
      os << " " << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) os << ' ';
      os << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (const size_t w : widths) {
    for (size_t i = 0; i < w + 2; ++i) os << '-';
    os << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Fmt(uint64_t v) { return std::to_string(v); }

std::vector<PointId> SampleQueryPids(const Dataset& db, size_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  const size_t n = std::min(count, db.size());
  std::vector<uint32_t> sampled = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(db.size()), static_cast<uint32_t>(n));
  return {sampled.begin(), sampled.end()};
}

QueryCost MeasureQuery(DiskSimulator* disk,
                       const std::function<void()>& fn) {
  disk->ResetCounters();
  Timer timer;
  fn();
  QueryCost cost;
  cost.cpu_seconds = timer.Seconds();
  cost.io_seconds = disk->SimulatedIoSeconds();
  cost.sequential_pages = disk->sequential_reads();
  cost.random_pages = disk->random_reads();
  return cost;
}

}  // namespace knmatch::eval

#ifndef KNMATCH_EVAL_ADVISOR_H_
#define KNMATCH_EVAL_ADVISOR_H_

#include <span>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"
#include "knmatch/storage/disk_simulator.h"

namespace knmatch::eval {

/// The disk methods a frequent k-n-match query can be answered with.
enum class SearchMethod {
  kSequentialScan,
  kDiskAd,
  kVaFile,
};

/// Modelled per-query I/O costs (seconds) under the advisor's disk
/// config, plus the sampled statistics they were derived from.
struct CostEstimate {
  double scan_seconds = 0;
  double ad_seconds = 0;
  double va_seconds = 0;
  SearchMethod best = SearchMethod::kSequentialScan;
  /// Fraction of all attributes the AD algorithm retrieved on the
  /// sample.
  double ad_attribute_fraction = 0;
  /// Fraction of sample points the VA-file phase 1 failed to prune.
  double va_refine_fraction = 0;
};

/// Sampling-based cost advisor: Figures 12 and 15 show the AD
/// algorithm's advantage shrinking as n1 grows (on uniform data it
/// crosses the scan around n1 = 14 of 16), so a system needs a way to
/// pick the access path per query. The advisor runs the query on a
/// small uniform sample of the database (in memory), measures the AD
/// attribute fraction and the VA-file pruning rate there, and
/// extrapolates page counts through the DiskConfig's time model.
class QueryAdvisor {
 public:
  /// Samples `sample_size` points of `db` (which must outlive the
  /// advisor). Building the advisor costs one pass over the sample.
  QueryAdvisor(const Dataset& db, DiskConfig config = DiskConfig(),
               size_t sample_size = 2000, uint64_t seed = 1);

  ~QueryAdvisor();
  QueryAdvisor(const QueryAdvisor&) = delete;
  QueryAdvisor& operator=(const QueryAdvisor&) = delete;

  /// Estimates the cost of answering the frequent k-n-match query with
  /// each method and picks the cheapest.
  Result<CostEstimate> Estimate(std::span<const Value> query, size_t n0,
                                size_t n1, size_t k) const;

 private:
  struct Impl;
  const Dataset& db_;
  DiskConfig config_;
  Impl* impl_;
};

}  // namespace knmatch::eval

#endif  // KNMATCH_EVAL_ADVISOR_H_

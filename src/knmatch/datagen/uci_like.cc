#include "knmatch/datagen/uci_like.h"

#include <string>

#include "knmatch/datagen/generators.h"

namespace knmatch::datagen {

namespace {

struct UciSpec {
  UciName name;
  const char* display;
  size_t cardinality;
  size_t dims;
  size_t classes;
  /// Cluster tightness and noise tuned per dataset so the replica's
  /// class-strip accuracies land in the neighbourhood of Table 4's
  /// real-data numbers (iris easy, glass hard, ...).
  double cluster_sigma;
  double noise_dim_fraction;
  double outlier_prob;
};

const UciSpec& SpecFor(UciName name) {
  // Parameters were swept so each replica's class-strip accuracies land
  // near the corresponding real dataset's Table 4 numbers and preserve
  // the paper's ordering (freq. k-n-match > IGrid, kNN in between); see
  // EXPERIMENTS.md.
  static const UciSpec kSpecs[] = {
      {UciName::kIonosphere, "Ionosphere (34)", 351, 34, 2, 0.20, 0.30,
       0.18},
      {UciName::kSegmentation, "Segmentation (19)", 300, 19, 7, 0.08, 0.25,
       0.08},
      {UciName::kWdbc, "Wdbc (30)", 569, 30, 2, 0.12, 0.35, 0.15},
      {UciName::kGlass, "Glass (9)", 214, 9, 7, 0.08, 0.10, 0.10},
      {UciName::kIris, "Iris (4)", 150, 4, 3, 0.03, 0.25, 0.08},
  };
  for (const UciSpec& spec : kSpecs) {
    if (spec.name == name) return spec;
  }
  return kSpecs[0];
}

}  // namespace

std::vector<UciName> AllUciNames() {
  return {UciName::kIonosphere, UciName::kSegmentation, UciName::kWdbc,
          UciName::kGlass, UciName::kIris};
}

std::string_view UciDisplayName(UciName name) {
  return SpecFor(name).display;
}

Dataset MakeUciLike(UciName name, uint64_t seed) {
  const UciSpec& spec = SpecFor(name);
  ClusteredSpec gen;
  gen.cardinality = spec.cardinality;
  gen.dims = spec.dims;
  gen.num_classes = spec.classes;
  gen.cluster_sigma = spec.cluster_sigma;
  gen.noise_dim_fraction = spec.noise_dim_fraction;
  gen.outlier_prob = spec.outlier_prob;
  gen.seed = seed + static_cast<uint64_t>(name) * 1000003ULL;
  Dataset db = MakeClustered(gen);
  db.set_name(std::string(spec.display) + "-like");
  return db;
}

}  // namespace knmatch::datagen

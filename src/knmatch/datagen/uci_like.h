#ifndef KNMATCH_DATAGEN_UCI_LIKE_H_
#define KNMATCH_DATAGEN_UCI_LIKE_H_

#include <string_view>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/status.h"

namespace knmatch::datagen {

/// The five real datasets of the paper's Table 4, as synthetic replicas.
///
/// The UCI originals are not redistributable inside this repository, so
/// each replica reproduces the original's cardinality, dimensionality,
/// and class count, with Gaussian class structure plus the per-dimension
/// noise and sporadic extreme readings whose presence is exactly the
/// paper's argument for matching-based search (see DESIGN.md,
/// "Substitutions").
enum class UciName {
  kIonosphere,    // 351 x 34, 2 classes
  kSegmentation,  // 300 x 19, 7 classes
  kWdbc,          // 569 x 30, 2 classes
  kGlass,         // 214 x  9, 7 classes
  kIris,          // 150 x  4, 3 classes
};

/// All five names, in the paper's Table 4 order.
std::vector<UciName> AllUciNames();

/// The display name used in Table 4 ("Ionosphere (34)", ...).
std::string_view UciDisplayName(UciName name);

/// Builds the replica dataset for `name`, labelled and normalized.
Dataset MakeUciLike(UciName name, uint64_t seed = 42);

}  // namespace knmatch::datagen

#endif  // KNMATCH_DATAGEN_UCI_LIKE_H_

#include "knmatch/datagen/zipfian.h"

#include <algorithm>
#include <cmath>

#include "knmatch/common/random.h"

namespace knmatch::datagen {

std::vector<std::vector<Value>> MakeZipfianQueryMix(
    const Dataset& db, const ZipfianQueryMixSpec& spec) {
  std::vector<std::vector<Value>> queries;
  if (db.size() == 0 || spec.pool_size == 0 || spec.count == 0) {
    return queries;
  }
  Rng rng(spec.seed);

  const uint32_t pool_size = static_cast<uint32_t>(
      std::min<size_t>(spec.pool_size, db.size()));
  // Pool members in permuted order: the Zipf rank-to-point assignment
  // is itself random, so rank 1 is not biased toward low pids.
  const std::vector<uint32_t> pool_pids = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(db.size()), pool_size);

  // Zipf CDF over ranks 1..pool_size with exponent s.
  std::vector<double> cdf(pool_size);
  double total = 0;
  for (uint32_t i = 0; i < pool_size; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), spec.skew);
    cdf[i] = total;
  }
  for (double& v : cdf) v /= total;

  queries.reserve(spec.count);
  for (size_t draw = 0; draw < spec.count; ++draw) {
    const double u = rng.Uniform01();
    const size_t rank = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const auto p = db.point(pool_pids[std::min<size_t>(rank, pool_size - 1)]);
    queries.emplace_back(p.begin(), p.end());
  }
  return queries;
}

}  // namespace knmatch::datagen

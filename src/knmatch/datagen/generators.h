#ifndef KNMATCH_DATAGEN_GENERATORS_H_
#define KNMATCH_DATAGEN_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "knmatch/common/dataset.h"

namespace knmatch::datagen {

/// Uniformly distributed points in [0, 1]^d — the paper's synthetic
/// workload for the efficiency experiments (Figures 10, 12-14).
Dataset MakeUniform(size_t cardinality, size_t dims, uint64_t seed);

/// Parameters for the class-labelled clustered generator.
struct ClusteredSpec {
  size_t cardinality = 1000;
  size_t dims = 16;
  size_t num_classes = 4;
  /// Standard deviation of a class cluster in each informative
  /// dimension.
  double cluster_sigma = 0.06;
  /// Fraction of dimensions carrying no class signal (uniform noise).
  double noise_dim_fraction = 0.25;
  /// Probability that any single attribute is replaced by a uniform
  /// "bad reading" — the wrong-sensor/bad-pixel artifact the paper's
  /// introduction motivates partial matching with.
  double outlier_prob = 0.02;
  uint64_t seed = 1;
};

/// Gaussian class clusters with noise dimensions and sporadic extreme
/// readings; labelled, normalized to [0, 1]. The substrate for the
/// class-stripping effectiveness experiments (Table 4, Figures 8-9).
Dataset MakeClustered(const ClusteredSpec& spec);

/// Skewed (cluster-weighted, exponential-tailed) data in [0, 1]^d.
/// Mimics the "high skew" the paper observes in the Corel texture data.
Dataset MakeSkewed(size_t cardinality, size_t dims, uint64_t seed,
                   size_t num_clusters = 20);

/// Linearly correlated data in [0, 1]^d: a 3-dimensional latent factor
/// mapped through a random linear blend plus noise. Exercises
/// algorithms under inter-dimension correlation.
Dataset MakeCorrelated(size_t cardinality, size_t dims, uint64_t seed);

}  // namespace knmatch::datagen

#endif  // KNMATCH_DATAGEN_GENERATORS_H_

#include "knmatch/datagen/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "knmatch/common/random.h"

namespace knmatch::datagen {

namespace {

/// Folds a real value into [0, 1] by reflection at the borders. Unlike
/// clamping, this keeps the distribution continuous — no probability
/// mass piles up at exactly 0.0 or 1.0, so continuous generators stay
/// tie-free (ties are where scan order and AD pop order may disagree).
Value FoldIntoUnit(Value v) {
  while (v < 0.0 || v > 1.0) {
    if (v < 0.0) v = -v;
    if (v > 1.0) v = 2.0 - v;
  }
  return v;
}

}  // namespace

Dataset MakeUniform(size_t cardinality, size_t dims, uint64_t seed) {
  Rng rng(seed);
  Matrix m(cardinality, dims);
  for (Value& v : m.data()) v = rng.Uniform01();
  Dataset db(std::move(m));
  db.set_name("uniform-" + std::to_string(dims) + "d-" +
              std::to_string(cardinality));
  return db;
}

Dataset MakeClustered(const ClusteredSpec& spec) {
  Rng rng(spec.seed);
  const size_t d = spec.dims;

  // Choose which dimensions carry class signal.
  const auto num_noise_dims = static_cast<size_t>(
      std::round(spec.noise_dim_fraction * static_cast<double>(d)));
  std::vector<bool> is_noise(d, false);
  for (uint32_t idx : rng.SampleWithoutReplacement(
           static_cast<uint32_t>(d), static_cast<uint32_t>(num_noise_dims))) {
    is_noise[idx] = true;
  }

  // Class centers in the informative dimensions, kept away from the
  // borders so clusters do not clip too hard.
  std::vector<std::vector<Value>> centers(spec.num_classes,
                                          std::vector<Value>(d));
  for (auto& center : centers) {
    for (size_t dim = 0; dim < d; ++dim) {
      center[dim] = rng.Uniform(0.15, 0.85);
    }
  }

  Matrix m(spec.cardinality, d);
  std::vector<Label> labels(spec.cardinality);
  for (size_t row = 0; row < spec.cardinality; ++row) {
    const auto cls = static_cast<size_t>(rng.UniformInt(spec.num_classes));
    labels[row] = static_cast<Label>(cls);
    for (size_t dim = 0; dim < d; ++dim) {
      Value v;
      if (is_noise[dim]) {
        v = rng.Uniform01();
      } else {
        v = rng.Gaussian(centers[cls][dim], spec.cluster_sigma);
      }
      // Sporadic extreme reading, independent of class.
      if (rng.Bernoulli(spec.outlier_prob)) {
        v = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 0.02)
                               : rng.Uniform(0.98, 1.0);
      }
      m.at(row, dim) = FoldIntoUnit(v);
    }
  }

  Dataset db(std::move(m), std::move(labels));
  db.set_name("clustered-" + std::to_string(d) + "d-" +
              std::to_string(spec.num_classes) + "c");
  return db;
}

Dataset MakeSkewed(size_t cardinality, size_t dims, uint64_t seed,
                   size_t num_clusters) {
  Rng rng(seed);
  // Exponentially decaying cluster weights (Zipf-like mass).
  std::vector<double> cumulative(num_clusters);
  double total = 0;
  for (size_t i = 0; i < num_clusters; ++i) {
    total += std::exp(-0.35 * static_cast<double>(i));
    cumulative[i] = total;
  }

  std::vector<std::vector<Value>> centers(num_clusters,
                                          std::vector<Value>(dims));
  std::vector<double> sigmas(num_clusters);
  for (size_t i = 0; i < num_clusters; ++i) {
    for (size_t dim = 0; dim < dims; ++dim) {
      // Skewed marginals: centers biased toward the low end.
      centers[i][dim] = std::pow(rng.Uniform01(), 2.0);
    }
    sigmas[i] = rng.Uniform(0.01, 0.08);
  }

  Matrix m(cardinality, dims);
  for (size_t row = 0; row < cardinality; ++row) {
    const double pick = rng.Uniform(0.0, total);
    const size_t cluster = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
        cumulative.begin());
    for (size_t dim = 0; dim < dims; ++dim) {
      m.at(row, dim) = FoldIntoUnit(
          rng.Gaussian(centers[cluster][dim], sigmas[cluster]));
    }
  }

  Dataset db(std::move(m));
  db.set_name("skewed-" + std::to_string(dims) + "d-" +
              std::to_string(cardinality));
  return db;
}

Dataset MakeCorrelated(size_t cardinality, size_t dims, uint64_t seed) {
  Rng rng(seed);
  constexpr size_t kLatentDims = 3;
  // Random non-negative blend of the latent factors per dimension.
  std::vector<std::vector<double>> blend(dims,
                                         std::vector<double>(kLatentDims));
  for (auto& row : blend) {
    double norm = 0;
    for (double& w : row) {
      w = rng.Uniform01();
      norm += w;
    }
    for (double& w : row) w /= norm;
  }

  Matrix m(cardinality, dims);
  std::vector<double> latent(kLatentDims);
  for (size_t row = 0; row < cardinality; ++row) {
    for (double& f : latent) f = rng.Uniform01();
    for (size_t dim = 0; dim < dims; ++dim) {
      double v = 0;
      for (size_t f = 0; f < kLatentDims; ++f) {
        v += blend[dim][f] * latent[f];
      }
      v += rng.Gaussian(0.0, 0.03);
      m.at(row, dim) = FoldIntoUnit(v);
    }
  }

  Dataset db(std::move(m));
  db.set_name("correlated-" + std::to_string(dims) + "d-" +
              std::to_string(cardinality));
  return db;
}

}  // namespace knmatch::datagen

#include "knmatch/datagen/coil_like.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "knmatch/common/random.h"

namespace knmatch::datagen {

namespace {

constexpr size_t kNumPrototypes = 12;

using Prototype = std::vector<Value>;  // kCoilGroupSize values

/// Writes `proto` (jittered by `sigma`) into the feature group starting
/// at `offset` of row `pid`.
void WriteGroup(Matrix* m, PointId pid, size_t offset,
                const Prototype& proto, double sigma, double scale,
                Rng* rng) {
  for (size_t i = 0; i < kCoilGroupSize; ++i) {
    Value v = proto[i] * scale + rng->Gaussian(0.0, sigma);
    // Reflect into [0, 1] rather than clamping, so no two features
    // collide at exactly 0.0 or 1.0.
    while (v < 0.0 || v > 1.0) {
      if (v < 0.0) v = -v;
      if (v > 1.0) v = 2.0 - v;
    }
    m->at(pid, offset + i) = v;
  }
}

}  // namespace

Dataset MakeCoilLike(uint64_t seed,
                     std::vector<CoilAssignment>* assignments) {
  Rng rng(seed);

  // Prototype banks per feature group. Prototype values stay in
  // [0.2, 0.8] so that typical cross-prototype differences are moderate
  // (~0.2-0.3 per dimension).
  auto make_bank = [&rng]() {
    std::vector<Prototype> bank(kNumPrototypes);
    for (auto& proto : bank) {
      proto.resize(kCoilGroupSize);
      for (Value& v : proto) v = rng.Uniform(0.2, 0.8);
    }
    return bank;
  };
  std::vector<Prototype> colors = make_bank();
  std::vector<Prototype> textures = make_bank();
  std::vector<Prototype> shapes = make_bank();

  // Make color prototype 11 extreme — far from every other color — so
  // that an object sharing texture+shape with the query but wearing
  // color 11 is pushed to the back of any Euclidean ranking.
  for (size_t i = 0; i < kCoilGroupSize; ++i) {
    colors[11][i] = i % 2 == 0 ? 0.98 : 0.02;
  }

  // Prototype assignment per object.
  struct Assignment {
    size_t color, texture, shape;
    double jitter = 0.015;
    double shape_scale = 1.0;
  };
  std::vector<Assignment> assign(kCoilObjects);
  for (auto& a : assign) {
    a.color = rng.UniformInt(kNumPrototypes);
    a.texture = rng.UniformInt(kNumPrototypes);
    a.shape = rng.UniformInt(kNumPrototypes);
    // Keep the planted (texture 3, shape 7) pairing unique to the story
    // objects below.
    while (a.texture == 3 && a.shape == 7) {
      a.shape = rng.UniformInt(kNumPrototypes);
    }
    // Reserve the extreme color for the planted "boat".
    while (a.color == 11) a.color = rng.UniformInt(kNumPrototypes);
  }

  // The planted objects (see header).
  assign[CoilLikeIds::kQuery] = {5, 3, 7, 0.012, 1.0};
  assign[CoilLikeIds::kBoat] = {11, 3, 7, 0.012, 1.0};
  assign[CoilLikeIds::kScaledVariant] = {2, 3, 7, 0.015, 1.3};
  assign[CoilLikeIds::kSameColorA] = {5, 3, 9, 0.05, 1.0};
  assign[CoilLikeIds::kSameColorB] = {5, 6, 7, 0.05, 1.0};
  assign[CoilLikeIds::kSameColorC] = {5, 3, 2, 0.06, 1.0};

  Matrix m(kCoilObjects, kCoilFeatures);
  if (assignments != nullptr) assignments->resize(kCoilObjects);
  for (PointId pid = 0; pid < kCoilObjects; ++pid) {
    const Assignment& a = assign[pid];
    WriteGroup(&m, pid, 0, colors[a.color], a.jitter, 1.0, &rng);
    WriteGroup(&m, pid, kCoilGroupSize, textures[a.texture], a.jitter, 1.0,
               &rng);
    WriteGroup(&m, pid, 2 * kCoilGroupSize, shapes[a.shape], a.jitter,
               a.shape_scale, &rng);
    if (assignments != nullptr) {
      (*assignments)[pid] = CoilAssignment{a.color, a.texture, a.shape};
    }
  }

  Dataset db(std::move(m));
  db.set_name("coil100-like");
  return db;
}

}  // namespace knmatch::datagen

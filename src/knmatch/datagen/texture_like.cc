#include "knmatch/datagen/texture_like.h"

#include "knmatch/datagen/generators.h"

namespace knmatch::datagen {

Dataset MakeTextureLike(uint64_t seed, size_t cardinality) {
  Dataset db = MakeSkewed(cardinality, 16, seed, /*num_clusters=*/24);
  db.set_name("texture-like");
  return db;
}

}  // namespace knmatch::datagen

#ifndef KNMATCH_DATAGEN_ZIPFIAN_H_
#define KNMATCH_DATAGEN_ZIPFIAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "knmatch/common/dataset.h"

namespace knmatch::datagen {

/// Parameters for a Zipf-skewed repeated-query mix — the workload a
/// result cache is designed for: a small pool of distinct queries
/// drawn with a heavy-tailed popularity distribution, so a handful of
/// hot queries dominate.
struct ZipfianQueryMixSpec {
  /// Distinct queries in the pool, sampled from the dataset's own
  /// points (the paper's query model).
  size_t pool_size = 64;
  /// Total queries drawn (with replacement) from the pool.
  size_t count = 512;
  /// Zipf exponent s: draw i (1-based rank) has probability
  /// proportional to 1 / i^s. 0 is uniform; ~1 is classic Zipf.
  double skew = 1.1;
  uint64_t seed = 1;
};

/// A Zipf-skewed query mix over `db`. Deterministic given the spec:
/// the pool is sampled without replacement from db's points and the
/// draws invert the pool's Zipf CDF, both from one seeded Rng. Rank 1
/// (most popular) is a uniformly chosen pool member, not always the
/// same point, so the hot set varies with the seed.
std::vector<std::vector<Value>> MakeZipfianQueryMix(
    const Dataset& db, const ZipfianQueryMixSpec& spec);

}  // namespace knmatch::datagen

#endif  // KNMATCH_DATAGEN_ZIPFIAN_H_

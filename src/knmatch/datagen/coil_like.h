#ifndef KNMATCH_DATAGEN_COIL_LIKE_H_
#define KNMATCH_DATAGEN_COIL_LIKE_H_

#include <cstdint>
#include <vector>

#include "knmatch/common/dataset.h"
#include "knmatch/common/types.h"

namespace knmatch::datagen {

/// A synthetic analog of the COIL-100 image-feature database used in the
/// paper's Section 5.1.1 (Tables 2 and 3): 100 objects x 54 features,
/// partitioned into three feature groups — color [0, 18), texture
/// [18, 36) and shape [36, 54) — mirroring the paper's narrative that
/// "the first three dimensions represent the color, ...".
///
/// The generator plants the same similarity structure the paper's
/// experiment exposes:
///  * object 42 (the query, an "orange boat"),
///  * object 78 ("the boat"): identical texture and shape prototypes but
///    a far-away color — Euclidean kNN misses it because the 18 color
///    differences dominate; k-n-match finds it via its 36 near-perfect
///    partial matches,
///  * object 3 ("a yellow, bigger version"): same texture, shape scaled
///    up, different color — a weaker partial match that only appears for
///    a narrow band of n,
///  * objects 35, 94, 96 ("sun / volleyball-like"): share object 42's
///    color and an approximate texture, so both kNN and high-n matches
///    find them.
/// The remaining 94 objects get independent random prototypes.
struct CoilLikeIds {
  static constexpr PointId kQuery = 42;
  static constexpr PointId kBoat = 78;          // partial match, 36 dims
  static constexpr PointId kScaledVariant = 3;  // partial match, ~18 dims
  static constexpr PointId kSameColorA = 35;
  static constexpr PointId kSameColorB = 94;
  static constexpr PointId kSameColorC = 96;
};

/// Feature-group layout of the COIL-like data.
inline constexpr size_t kCoilObjects = 100;
inline constexpr size_t kCoilFeatures = 54;
inline constexpr size_t kCoilGroupSize = 18;  // color | texture | shape

/// Per-object prototype assignment: which color / texture / shape
/// prototype each object was generated from. Two objects sharing an
/// entry are planted partial matches in that feature group — the
/// ground truth for precision evaluations beyond the paper's
/// qualitative Tables 2/3.
struct CoilAssignment {
  size_t color = 0;
  size_t texture = 0;
  size_t shape = 0;
};

/// Builds the COIL-100-like dataset (unlabelled, values in [0, 1]).
/// When `assignments` is non-null it receives one entry per object.
Dataset MakeCoilLike(uint64_t seed = 7,
                     std::vector<CoilAssignment>* assignments = nullptr);

}  // namespace knmatch::datagen

#endif  // KNMATCH_DATAGEN_COIL_LIKE_H_

#ifndef KNMATCH_DATAGEN_TEXTURE_LIKE_H_
#define KNMATCH_DATAGEN_TEXTURE_LIKE_H_

#include <cstdint>

#include "knmatch/common/dataset.h"

namespace knmatch::datagen {

/// The Corel "Co-occurrence Texture" dataset of the paper's efficiency
/// experiments (68040 points, 16 dimensions, UCI KDD archive), as a
/// synthetic replica: a heavily skewed Gaussian mixture with
/// low-end-biased marginals. The paper attributes the AD algorithm's
/// especially good behaviour on this data to its "high skew"; the
/// replica reproduces that property. Pass a smaller cardinality to run
/// quick variants of the same distribution.
Dataset MakeTextureLike(uint64_t seed = 9, size_t cardinality = 68040);

}  // namespace knmatch::datagen

#endif  // KNMATCH_DATAGEN_TEXTURE_LIKE_H_

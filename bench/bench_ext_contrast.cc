// Extension experiment: the "meaningfulness" analysis of Beyer et al.
// [8], which the paper's related work builds on. As dimensionality
// grows, the relative contrast (D_max - D_min) / D_min between the
// farthest and nearest neighbor vanishes for aggregated distances on
// i.i.d. data — nearest-neighbor queries stop being meaningful — while
// clustered data keeps its contrast. We additionally measure the
// contrast of the n-match difference (n = d/2): counting near-matches
// instead of summing all differences preserves substantially more
// contrast at high d on clustered data.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

struct Contrast {
  double l2 = 0;
  double nmatch = 0;
};

Contrast MeasureContrast(const Dataset& db, uint64_t seed) {
  Contrast sum;
  auto queries = bench::SampleQueries(db, 5, seed);
  std::vector<Value> diffs;
  for (const auto& q : queries) {
    double l2_min = 1e300, l2_max = 0;
    double nm_min = 1e300, nm_max = 0;
    const size_t n = db.dims() / 2;
    for (PointId pid = 0; pid < db.size(); ++pid) {
      const double l2 =
          MetricDistance(db.point(pid), q, Metric::kEuclidean);
      if (l2 == 0) continue;  // the query itself
      const double nm = NMatchDifference(db.point(pid), q, n);
      l2_min = std::min(l2_min, l2);
      l2_max = std::max(l2_max, l2);
      if (nm > 0) {
        nm_min = std::min(nm_min, nm);
        nm_max = std::max(nm_max, nm);
      }
    }
    sum.l2 += (l2_max - l2_min) / l2_min;
    sum.nmatch += (nm_max - nm_min) / nm_min;
  }
  sum.l2 /= static_cast<double>(queries.size());
  sum.nmatch /= static_cast<double>(queries.size());
  return sum;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: relative contrast vs dimensionality (Beyer et al.)",
      "Section 6 related-work discussion of [8]; not a paper figure");

  eval::TablePrinter table({"d", "uniform L2", "uniform n-match",
                            "clustered L2", "clustered n-match"});
  for (const size_t d : {size_t{2}, size_t{8}, size_t{32}, size_t{128}}) {
    Dataset uniform = datagen::MakeUniform(5000, d, 500 + d);
    datagen::ClusteredSpec spec;
    spec.cardinality = 5000;
    spec.dims = d;
    spec.num_classes = 8;
    spec.cluster_sigma = 0.05;
    spec.noise_dim_fraction = 0.2;
    spec.outlier_prob = 0.02;
    spec.seed = 600 + d;
    Dataset clustered = datagen::MakeClustered(spec);

    const Contrast u = MeasureContrast(uniform, 42);
    const Contrast c = MeasureContrast(clustered, 42);
    table.AddRow({std::to_string(d), eval::Fmt(u.l2, 2),
                  eval::Fmt(u.nmatch, 2), eval::Fmt(c.l2, 2),
                  eval::Fmt(c.nmatch, 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nexpected shape: uniform-data L2 contrast collapses with d "
      "([8]'s result); clustered data keeps contrast (also [8]); the "
      "n-match difference holds markedly more contrast on clustered "
      "data at high d — the statistical-evidence argument of Section "
      "2.1.\n");
  return 0;
}

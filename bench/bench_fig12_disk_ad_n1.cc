// Figure 12: disk-based AD algorithm vs n1 (k = 20, n0 = 4) on a 16-d
// uniform dataset and the texture-like dataset.
//
// (a) page accesses grow with n1 (larger n1 -> larger k-n-match
//     difference -> more attributes below it);
// (b) response time: the paper observes AD beats the sequential scan
//     even for n1 well above the accuracy-chosen value (up to ~14 of
//     16 on uniform data, all the way to 16 on the skewed texture
//     data).

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

void RunDataset(const Dataset& db, uint64_t query_seed) {
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  DiskAdSearcher ad(columns);
  DiskScan scan(rows);

  constexpr size_t kK = 20;
  constexpr size_t kN0 = 4;
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig,
                                      query_seed);

  // Scan cost is n1-independent; measure once.
  uint64_t scan_pages = 0;
  double scan_time = 0;
  for (const auto& q : queries) {
    auto cost = eval::MeasureQuery(
        &disk, [&] { scan.FrequentKnMatch(q, kN0, 8, kK).value(); });
    scan_pages += cost.total_pages();
    scan_time += cost.total_seconds();
  }
  const double nq = static_cast<double>(queries.size());

  std::printf("--- %s (c=%zu, d=%zu), k=%zu, n0=%zu; scan: %s pages, "
              "%s s ---\n",
              db.name().c_str(), db.size(), db.dims(), kK, kN0,
              eval::Fmt(static_cast<double>(scan_pages) / nq, 0).c_str(),
              eval::Fmt(scan_time / nq).c_str());

  eval::TablePrinter table(
      {"n1", "AD pages", "AD time (s)", "AD beats scan time?"});
  for (size_t n1 = 8; n1 <= db.dims(); n1 += 2) {
    uint64_t ad_pages = 0;
    double ad_time = 0;
    for (const auto& q : queries) {
      auto cost = eval::MeasureQuery(
          &disk, [&] { ad.FrequentKnMatch(q, kN0, n1, kK).value(); });
      ad_pages += cost.total_pages();
      ad_time += cost.total_seconds();
    }
    table.AddRow({std::to_string(n1),
                  eval::Fmt(static_cast<double>(ad_pages) / nq, 0),
                  eval::Fmt(ad_time / nq),
                  ad_time < scan_time ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 12: disk-based AD algorithm vs n1",
                     "Section 5.2.2, Figure 12(a)/(b)");
  RunDataset(datagen::MakeUniform(100000, 16, 102), 13);
  RunDataset(datagen::MakeTextureLike(), 14);
  std::printf("expected shape (paper): AD page accesses grow with n1; AD "
              "stays below the scan's response time for n1 well beyond "
              "the accuracy-chosen ~8, especially on the skewed texture "
              "data.\n");
  return 0;
}

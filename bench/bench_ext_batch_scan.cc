// Extension experiment: shared-scan batching vs the AD algorithm under
// a concurrent query workload.
//
// The paper compares one query at a time, where the AD algorithm's
// selectivity wins. A sequential scan, however, can amortize its one
// full pass over any number of concurrent queries (shared scan), while
// AD pays its cursor I/O per query. This bench finds the workload size
// where the crossover happens — the honest caveat to Figures 11-14 for
// high-throughput deployments (CPU still grows per query for the scan;
// the I/O crossover is what is shown).

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader(
      "Extension: batched scan vs per-query AD (texture, k=20, n=[4,8])",
      "workload-level caveat to Figs. 11-14; not a paper figure");

  Dataset db = datagen::MakeTextureLike(9, 30000);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  DiskScan scan(rows);
  DiskAdSearcher ad(columns);

  eval::TablePrinter table({"batch size", "scan io total (s)",
                            "AD io total (s)", "winner"});
  for (const size_t batch : {size_t{1}, size_t{2}, size_t{4}, size_t{8},
                             size_t{16}}) {
    auto queries = bench::SampleQueries(db, batch, 900 + batch);

    disk.ResetCounters();
    scan.FrequentKnMatchBatch(queries, 4, 8, 20).value();
    const double scan_io = disk.SimulatedIoSeconds();

    disk.ResetCounters();
    for (const auto& q : queries) {
      ad.FrequentKnMatch(q, 4, 8, 20).value();
    }
    const double ad_io = disk.SimulatedIoSeconds();

    table.AddRow({std::to_string(batch), eval::Fmt(scan_io),
                  eval::Fmt(ad_io), ad_io < scan_io ? "AD" : "scan"});
  }
  table.Print(std::cout);
  std::printf("\nexpected shape: AD wins small batches (the paper's "
              "regime); the shared scan's fixed cost wins once enough "
              "queries ride the same pass.\n");
  return 0;
}

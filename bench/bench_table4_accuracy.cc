// Table 4: class-stripping accuracy of IGrid, HCINN and the frequent
// k-n-match query on the five UCI datasets (replicas).
//
// Protocol (Section 5.1.2): 100 queries sampled from the dataset,
// k = 20, accuracy = correct-class answers / 2000. [n0, n1] = [1, d].
// HCINN requires human interaction and has no available code — exactly
// as in the paper, its two published numbers are cited, the rest are
// N.A.
//
// Paper's Table 4:
//   Ionosphere (34)   IGrid 80.1%  HCINN 86%   freq. k-n-match 87.5%
//   Segmentation (19) IGrid 79.9%  HCINN 83%   freq. k-n-match 87.3%
//   Wdbc (30)         IGrid 87.1%  HCINN N.A.  freq. k-n-match 92.5%
//   Glass (9)         IGrid 58.6%  HCINN N.A.  freq. k-n-match 67.8%
//   Iris (4)          IGrid 88.9%  HCINN N.A.  freq. k-n-match 89.6%
// Expected shape: frequent k-n-match beats IGrid on every dataset.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader(
      "Table 4: accuracy of similarity-search techniques (UCI replicas)",
      "Section 5.1.2, Table 4");

  struct PaperRow {
    const char* igrid;
    const char* hcinn;
    const char* fknm;
  };
  const PaperRow paper[] = {
      {"80.1%", "86%", "87.5%"},  {"79.9%", "83%", "87.3%"},
      {"87.1%", "N.A.", "92.5%"}, {"58.6%", "N.A.", "67.8%"},
      {"88.9%", "N.A.", "89.6%"},
  };

  eval::TablePrinter table({"data set (d)", "IGrid", "Freq. k-n-match",
                            "kNN (L2)", "paper IGrid", "paper HCINN",
                            "paper fknm"});

  size_t row_idx = 0;
  bool fknm_always_wins = true;
  for (const datagen::UciName name : datagen::AllUciNames()) {
    Dataset db = datagen::MakeUciLike(name);
    AdSearcher searcher(db);
    IGridIndex igrid(db);

    eval::ClassStripConfig config;  // 100 queries, k = 20
    const double acc_igrid =
        eval::ClassStripAccuracy(db, config, eval::IGridMethod(igrid));
    const double acc_fknm = eval::ClassStripAccuracy(
        db, config, eval::FrequentKnMatchMethod(searcher, 1, db.dims()));
    const double acc_knn =
        eval::ClassStripAccuracy(db, config, eval::KnnMethod(db));
    fknm_always_wins &= acc_fknm > acc_igrid;

    table.AddRow({std::string(datagen::UciDisplayName(name)),
                  eval::Fmt(100 * acc_igrid, 1) + "%",
                  eval::Fmt(100 * acc_fknm, 1) + "%",
                  eval::Fmt(100 * acc_knn, 1) + "%",
                  paper[row_idx].igrid, paper[row_idx].hcinn,
                  paper[row_idx].fknm});
    ++row_idx;
  }
  table.Print(std::cout);

  std::printf("\n[%s] frequent k-n-match more accurate than IGrid on every "
              "dataset (paper: up to +9.2%% over IGrid)\n",
              fknm_always_wins ? "ok" : "FAIL");
  std::printf("note: HCINN needs human interaction; as in the paper, its "
              "numbers are cited, not measured.\n");
  return 0;
}

// Ablations for the design decisions DESIGN.md calls out. These are not
// paper figures; they justify the modelling choices behind them.
//
//  A. IGrid list layout: fragmented (what the paper measured and
//     criticizes) vs idealized contiguous lists.
//  B. Disk head model: per-cursor read-ahead (default) vs a single
//     unbuffered head — the AD algorithm's 2d interleaved cursors only
//     enjoy sequential I/O thanks to per-cursor buffering.
//  C. VA-file resolution: bits per dimension vs pruning power.
//  D. Page size: 1 KB / 4 KB / 16 KB.
//  E. Column organization for disk AD: sorted runs (ColumnStore) vs
//     per-dimension B+-trees (index traversals + leaf walks).

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

void AblationIGridLayout() {
  std::printf("--- A. IGrid inverted-list layout ---\n");
  Dataset db = datagen::MakeTextureLike(9, 30000);
  eval::TablePrinter table(
      {"layout", "seq pages", "rnd pages", "io time (s)"});
  for (const bool fragmented : {true, false}) {
    DiskSimulator disk;
    IGridIndex igrid(db, IGridOptions{.fragmented = fragmented}, &disk);
    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 71);
    uint64_t seq = 0, rnd = 0;
    double io = 0;
    for (const auto& q : queries) {
      auto cost =
          eval::MeasureQuery(&disk, [&] { igrid.Search(q, 20).value(); });
      seq += cost.sequential_pages;
      rnd += cost.random_pages;
      io += cost.io_seconds;
    }
    const double nq = static_cast<double>(queries.size());
    table.AddRow({fragmented ? "fragmented (paper)" : "contiguous (ideal)",
                  eval::Fmt(static_cast<double>(seq) / nq, 0),
                  eval::Fmt(static_cast<double>(rnd) / nq, 0),
                  eval::Fmt(io / nq)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

void AblationDiskHeadModel() {
  std::printf("--- B. disk head model (AD vs scan, texture 30k) ---\n");
  Dataset db = datagen::MakeTextureLike(9, 30000);
  eval::TablePrinter table(
      {"model", "AD io (s)", "scan io (s)", "AD wins?"});
  for (const bool single_head : {false, true}) {
    DiskConfig config;
    config.single_head = single_head;
    DiskSimulator disk(config);
    RowStore rows(db, &disk);
    ColumnStore columns(db, &disk);
    DiskAdSearcher ad(columns);
    DiskScan scan(rows);
    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 72);
    double ad_io = 0, scan_io = 0;
    for (const auto& q : queries) {
      ad_io += eval::MeasureQuery(&disk, [&] {
                 ad.FrequentKnMatch(q, 4, 8, 20).value();
               }).io_seconds;
      scan_io += eval::MeasureQuery(&disk, [&] {
                   scan.FrequentKnMatch(q, 4, 8, 20).value();
                 }).io_seconds;
    }
    table.AddRow({single_head ? "single head (no buffers)"
                              : "per-cursor buffers (default)",
                  eval::Fmt(ad_io / 5), eval::Fmt(scan_io / 5),
                  ad_io < scan_io ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("note: without per-cursor buffering the AD cursors thrash "
              "the head; the paper's sequential-forward-search claim "
              "presumes buffered cursors.\n\n");
}

void AblationVaBits() {
  std::printf("--- C. VA-file bits per dimension (texture 30k) ---\n");
  Dataset db = datagen::MakeTextureLike(9, 30000);
  DiskSimulator disk;
  RowStore rows(db, &disk);
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 73);
  eval::TablePrinter table(
      {"bits", "VA pages", "refined %", "io time (s)"});
  for (const unsigned bits : {2u, 4u, 6u, 8u, 10u}) {
    VaFile va(db, &disk, bits);
    VaKnMatchSearcher searcher(va, rows);
    uint64_t refined = 0;
    double io = 0;
    for (const auto& q : queries) {
      auto cost = eval::MeasureQuery(&disk, [&] {
        refined +=
            searcher.FrequentKnMatch(q, 4, 8, 20).value().points_refined;
      });
      io += cost.io_seconds;
    }
    const double nq = static_cast<double>(queries.size());
    table.AddRow({std::to_string(bits), std::to_string(va.num_pages()),
                  eval::Fmt(100.0 * static_cast<double>(refined) /
                                (nq * static_cast<double>(db.size())),
                            1),
                  eval::Fmt(io / nq)});
  }
  table.Print(std::cout);
  std::printf("\n");
}

void AblationPageSize() {
  std::printf("--- D. page size (uniform 30k x 16) ---\n");
  Dataset db = datagen::MakeUniform(30000, 16, 74);
  eval::TablePrinter table({"page", "AD io (s)", "scan io (s)"});
  for (const size_t page : {size_t{1024}, size_t{4096}, size_t{16384}}) {
    DiskConfig config;
    config.page_size = page;
    DiskSimulator disk(config);
    RowStore rows(db, &disk);
    ColumnStore columns(db, &disk);
    DiskAdSearcher ad(columns);
    DiskScan scan(rows);
    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 75);
    double ad_io = 0, scan_io = 0;
    for (const auto& q : queries) {
      ad_io += eval::MeasureQuery(&disk, [&] {
                 ad.FrequentKnMatch(q, 4, 8, 20).value();
               }).io_seconds;
      scan_io += eval::MeasureQuery(&disk, [&] {
                   scan.FrequentKnMatch(q, 4, 8, 20).value();
                 }).io_seconds;
    }
    table.AddRow({std::to_string(page), eval::Fmt(ad_io / 5),
                  eval::Fmt(scan_io / 5)});
  }
  table.Print(std::cout);
  std::printf("note: the page-time model is per page, so larger pages "
              "mean fewer charged reads for both methods; the AD/scan "
              "ratio is what matters.\n\n");
}

void AblationColumnOrganization() {
  std::printf("--- E. disk AD column organization (texture 30k) ---\n");
  Dataset db = datagen::MakeTextureLike(9, 30000);
  DiskSimulator disk;
  ColumnStore columns(db, &disk);
  BTreeColumns btrees(db, &disk);
  DiskAdSearcher runs_ad(columns);
  BTreeAdSearcher btree_ad(btrees);
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 76);

  eval::TablePrinter table({"organization", "pages/query", "io time (s)",
                            "answers identical?"});
  uint64_t runs_pages = 0, btree_pages = 0;
  double runs_io = 0, btree_io = 0;
  bool identical = true;
  for (const auto& q : queries) {
    FrequentKnMatchResult a, b;
    auto cost = eval::MeasureQuery(
        &disk, [&] { a = runs_ad.FrequentKnMatch(q, 4, 8, 20).value(); });
    runs_pages += cost.total_pages();
    runs_io += cost.io_seconds;
    cost = eval::MeasureQuery(
        &disk, [&] { b = btree_ad.FrequentKnMatch(q, 4, 8, 20).value(); });
    btree_pages += cost.total_pages();
    btree_io += cost.io_seconds;
    identical &= a.matches == b.matches;
  }
  const double nq = static_cast<double>(queries.size());
  table.AddRow({"sorted runs (ColumnStore)",
                eval::Fmt(static_cast<double>(runs_pages) / nq, 0),
                eval::Fmt(runs_io / nq), identical ? "yes" : "NO"});
  table.AddRow({"B+-trees (updatable)",
                eval::Fmt(static_cast<double>(btree_pages) / nq, 0),
                eval::Fmt(btree_io / nq), identical ? "yes" : "NO"});
  table.Print(std::cout);
  std::printf("note: B+-trees add root-to-leaf traversals per query and "
              "pack leaves less densely, in exchange for incremental "
              "updates.\n");
}

void AblationBufferPool() {
  std::printf("--- F. buffer pool (AD, texture 30k, 5 repeated queries) "
              "---\n");
  Dataset db = datagen::MakeTextureLike(9, 30000);
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 77);
  eval::TablePrinter table({"pool pages", "pages charged", "buffer hits",
                            "io time (s), all queries"});
  for (const size_t pool : {size_t{0}, size_t{64}, size_t{512},
                            size_t{4096}}) {
    DiskConfig config;
    config.buffer_pool_pages = pool;
    DiskSimulator disk(config);
    ColumnStore columns(db, &disk);
    DiskAdSearcher ad(columns);
    disk.ResetCounters();
    disk.DropBufferPool();
    double io = 0;
    uint64_t pages = 0, hits = 0;
    // Same query repeated plus neighbors: a warm pool absorbs the
    // shared hot columns.
    for (const auto& q : queries) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        auto cost = eval::MeasureQuery(&disk, [&] {
          ad.FrequentKnMatch(q, 4, 8, 20).value();
        });
        io += cost.io_seconds;
        pages += cost.total_pages();
        hits += disk.buffer_hits();
      }
    }
    table.AddRow({std::to_string(pool), eval::Fmt(pages),
                  eval::Fmt(hits), eval::Fmt(io)});
  }
  table.Print(std::cout);
  std::printf("note: the AD working set for a repeated query is the "
              "columns' hot center; a pool that holds it makes repeats "
              "nearly free.\n");
}

void AblationCostEstimation() {
  std::printf("--- G. AD cost estimation: measured vs analytic "
              "(histograms) vs sampled ---\n");
  eval::TablePrinter table({"dataset", "n", "measured attr %",
                            "analytic %", "sampled %"});
  for (const bool skewed : {false, true}) {
    Dataset db = skewed ? datagen::MakeTextureLike(9, 20000)
                        : datagen::MakeUniform(20000, 16, 78);
    AdSearcher searcher(db);
    eval::SelectivityEstimator analytic(db, 64);
    eval::QueryAdvisor sampler(db);
    auto queries = bench::SampleQueries(db, 3, 79);
    for (const size_t n : {size_t{4}, size_t{8}, size_t{12}}) {
      double measured = 0, est_a = 0, est_s = 0;
      for (const auto& q : queries) {
        measured += static_cast<double>(
                        searcher.KnMatch(q, n, 20).value()
                            .attributes_retrieved) /
                    (static_cast<double>(db.size()) *
                     static_cast<double>(db.dims()));
        est_a += analytic.EstimateAdAttributeFraction(q, n, 20);
        est_s += sampler.Estimate(q, n, n, 20)
                     .value()
                     .ad_attribute_fraction;
      }
      const double nq = static_cast<double>(queries.size());
      table.AddRow({db.name(), std::to_string(n),
                    eval::Fmt(100 * measured / nq, 1),
                    eval::Fmt(100 * est_a / nq, 1),
                    eval::Fmt(100 * est_s / nq, 1)});
    }
  }
  table.Print(std::cout);
  std::printf("note: the analytic estimator assumes per-dimension "
              "independence (classic optimizer statistics); sampling "
              "needs no assumption but costs a small query per "
              "estimate.\n");
}

}  // namespace

int main() {
  bench::PrintHeader("Ablations for DESIGN.md's modelling decisions",
                     "no single paper figure; supports Figs. 10-15");
  AblationIGridLayout();
  AblationDiskHeadModel();
  AblationVaBits();
  AblationPageSize();
  AblationColumnOrganization();
  AblationBufferPool();
  AblationCostEstimation();
  return 0;
}

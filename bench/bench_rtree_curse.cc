// The dimensionality curse of spatial access methods — the related-work
// motivation (Section 6) for why the paper does not build k-n-match on
// R-tree-like structures: "their performance deteriorates dramatically
// as dimensionality becomes high" [Weber et al., VLDB'98].
//
// For kNN across dimensionalities, this bench reports the fraction of
// R-tree nodes a best-first search visits (pruning power), the VA-file
// kNN refinement fraction, and modelled response times against the
// sequential scan. Expected shape: the R-tree wins in low dimensions
// and collapses to worse-than-scan by d ~ 16; the VA-file degrades far
// more slowly.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader("R-tree dimensionality curse (kNN, uniform 20k)",
                     "Section 6 related-work claims; [21]'s motivation");

  eval::TablePrinter table({"d", "R-tree nodes visited %", "VA refined %",
                            "iDist examined %", "R-tree io (s)",
                            "VA io (s)", "iDist io (s)", "scan io (s)"});
  for (const size_t d : {size_t{2}, size_t{4}, size_t{8}, size_t{16},
                         size_t{32}}) {
    Dataset db = datagen::MakeUniform(20000, d, 400 + d);
    DiskSimulator disk;
    RowStore rows(db, &disk);
    RTree rtree = RTree::Build(db, &disk);
    VaFile va(db, &disk, 8);
    VaKnnSearcher va_knn(va, rows);
    IDistanceIndex idist(db, &disk);
    DiskScan scan(rows);

    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig,
                                        80 + d);
    double rtree_io = 0, va_io = 0, idist_io = 0, scan_io = 0;
    double visited = 0, refined = 0, examined = 0;
    for (const auto& q : queries) {
      rtree_io += eval::MeasureQuery(&disk, [&] {
                    rtree.Knn(q, 10).value();
                  }).io_seconds;
      visited += static_cast<double>(rtree.last_nodes_visited()) /
                 static_cast<double>(rtree.num_nodes());
      va_io += eval::MeasureQuery(&disk, [&] {
                 va_knn.Knn(q, 10).value();
               }).io_seconds;
      refined += static_cast<double>(va_knn.last_points_refined()) /
                 static_cast<double>(db.size());
      idist_io += eval::MeasureQuery(&disk, [&] {
                    idist.Knn(q, 10).value();
                  }).io_seconds;
      examined += static_cast<double>(idist.last_points_examined()) /
                  static_cast<double>(db.size());
      scan_io += eval::MeasureQuery(&disk, [&] {
                   scan.KnnEuclidean(q, 10).value();
                 }).io_seconds;
    }
    const double nq = static_cast<double>(queries.size());
    table.AddRow({std::to_string(d), eval::Fmt(100 * visited / nq, 1),
                  eval::Fmt(100 * refined / nq, 2),
                  eval::Fmt(100 * examined / nq, 1),
                  eval::Fmt(rtree_io / nq), eval::Fmt(va_io / nq),
                  eval::Fmt(idist_io / nq), eval::Fmt(scan_io / nq)});
  }
  table.Print(std::cout);
  std::printf("\nexpected shape: R-tree pruning collapses with d (visited "
              "fraction -> 100%%, random node I/O makes it far worse than "
              "a scan), while the VA-file degrades gracefully — exactly "
              "why the paper's disk competitors are scan and VA-file, "
              "not R-trees.\n");
  return 0;
}

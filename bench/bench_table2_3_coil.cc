// Tables 2 and 3: k-n-match vs kNN on the COIL-100-like image features.
//
// Paper's Table 2 (k-n-match, k = 4, query image 42): image 78 (a boat,
// like the query) appears across most n values even though its color
// differs wildly; image 3 (a scaled variant) appears for one narrow n.
// Paper's Table 3 (kNN, k = 10): image 78 is absent — color dominates
// the Euclidean distance.
//
// The replica plants exactly that structure (see datagen/coil_like.h),
// so the qualitative claims can be checked mechanically; this binary
// prints the tables and the claim checklist.

#include <algorithm>
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  using datagen::CoilLikeIds;
  bench::PrintHeader("Tables 2 & 3: searching by k-n-match vs kNN "
                     "(COIL-100-like, query image 42)",
                     "Section 5.1.1, Tables 2 and 3");

  Dataset db = datagen::MakeCoilLike();
  const std::vector<Value> query(db.point(CoilLikeIds::kQuery).begin(),
                                 db.point(CoilLikeIds::kQuery).end());
  AdSearcher searcher(db);

  std::printf("--- Table 2: k-n-match results, k = 4 ---\n");
  eval::TablePrinter t2({"n", "images returned"});
  bool boat_seen = false, scaled_seen = false;
  for (size_t n = 5; n <= 50; n += 5) {
    auto r = searcher.KnMatch(query, n, 4);
    std::string imgs;
    std::vector<PointId> pids;
    for (const Neighbor& nb : r.value().matches) pids.push_back(nb.pid);
    std::sort(pids.begin(), pids.end());
    for (const PointId pid : pids) {
      imgs += std::to_string(pid) + " ";
      boat_seen |= pid == CoilLikeIds::kBoat;
      scaled_seen |= pid == CoilLikeIds::kScaledVariant;
    }
    t2.AddRow({std::to_string(n), imgs});
  }
  t2.Print(std::cout);

  std::printf("\n--- Table 3: kNN results, k = 10 ---\n");
  auto knn = KnnScan(db, query, 10);
  std::string imgs;
  bool boat_in_knn = false;
  std::vector<PointId> pids;
  for (const Neighbor& nb : knn.value().matches) pids.push_back(nb.pid);
  std::sort(pids.begin(), pids.end());
  for (const PointId pid : pids) {
    imgs += std::to_string(pid) + " ";
    boat_in_knn |= pid == CoilLikeIds::kBoat;
  }
  eval::TablePrinter t3({"k", "images returned"});
  t3.AddRow({"10", imgs});
  t3.Print(std::cout);

  // 20-NN check (the paper: "we did not find image 78 in the kNN result
  // set even when finding 20 nearest neighbors").
  auto knn20 = KnnScan(db, query, 20);
  bool boat_in_knn20 = false;
  for (const Neighbor& nb : knn20.value().matches) {
    boat_in_knn20 |= nb.pid == CoilLikeIds::kBoat;
  }

  std::printf("\n--- Claim checklist (paper -> measured) ---\n");
  std::printf("[%s] image 78 appears in k-n-match answers\n",
              boat_seen ? "ok" : "FAIL");
  std::printf("[%s] image 78 NOT in the 10-NN answer\n",
              !boat_in_knn ? "ok" : "FAIL");
  std::printf("[%s] image 78 NOT even in the 20-NN answer\n",
              !boat_in_knn20 ? "ok" : "FAIL");
  std::printf("[%s] image 3 (scaled variant) appears for some n "
              "but not persistently\n",
              scaled_seen ? "ok" : "note: not surfaced at sampled n");
  return 0;
}

// Extension experiment (beyond the paper's qualitative Tables 2/3):
// quantitative partial-similarity retrieval on the COIL-100-like data.
//
// Ground truth: the generator assigns every object a (color, texture,
// shape) prototype triple; two objects sharing at least one prototype
// are partial matches (they agree closely on >= 18 of 54 features).
// For every object as query we retrieve its top-5 neighbors with each
// method and measure precision@5 against that ground truth.
//
// To make the task discriminative, every attribute is independently
// corrupted with probability 6% to an extreme value — the "bad pixels,
// wrong readings or noise" of the paper's introduction. A corrupted
// dimension adds a large term to any aggregated distance but is simply
// skipped by matching-based scores.
//
// Expected: matching-based methods (k-n-match at subspace-sized n,
// frequent k-n-match, DPF) rank planted partial matches above
// accidentally-close full-space neighbors; Euclidean kNN and IGrid
// degrade under corruption.

#include <array>
#include <cstdio>
#include <functional>

#include "bench_common.h"

namespace {

using namespace knmatch;
using datagen::CoilAssignment;

bool SharesPrototype(const CoilAssignment& a, const CoilAssignment& b) {
  return a.color == b.color || a.texture == b.texture ||
         a.shape == b.shape;
}

using Ranker = std::function<std::vector<PointId>(
    std::span<const Value> query, size_t k)>;

double PrecisionAt(size_t k, const Dataset& db,
                   const std::vector<CoilAssignment>& truth,
                   const Ranker& ranker) {
  size_t relevant_returned = 0;
  size_t returned = 0;
  for (PointId qpid = 0; qpid < db.size(); ++qpid) {
    std::vector<PointId> ids = ranker(db.point(qpid), k + 1);
    std::erase(ids, qpid);
    if (ids.size() > k) ids.resize(k);
    for (const PointId pid : ids) {
      ++returned;
      if (SharesPrototype(truth[qpid], truth[pid])) ++relevant_returned;
    }
  }
  return static_cast<double>(relevant_returned) /
         static_cast<double>(returned);
}

std::vector<PointId> PidsOf(const std::vector<Neighbor>& matches) {
  std::vector<PointId> ids;
  for (const Neighbor& nb : matches) ids.push_back(nb.pid);
  return ids;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: precision@5 for partial-similarity retrieval "
      "(COIL-100-like, planted ground truth)",
      "extends Tables 2/3 quantitatively; not a paper figure");

  std::vector<CoilAssignment> truth;
  Dataset clean = datagen::MakeCoilLike(7, &truth);

  // Inject sporadic extreme readings (bad pixels).
  Rng rng(2026);
  Matrix corrupted(clean.size(), clean.dims());
  size_t corrupted_count = 0;
  for (PointId pid = 0; pid < clean.size(); ++pid) {
    for (size_t dim = 0; dim < clean.dims(); ++dim) {
      Value v = clean.at(pid, dim);
      if (rng.Bernoulli(0.06)) {
        v = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 0.03)
                               : rng.Uniform(0.97, 1.0);
        ++corrupted_count;
      }
      corrupted.at(pid, dim) = v;
    }
  }
  Dataset db(std::move(corrupted));
  std::printf("corrupted %zu of %zu attributes (%.1f%%)\n\n",
              corrupted_count, clean.size() * clean.dims(),
              100.0 * static_cast<double>(corrupted_count) /
                  static_cast<double>(clean.size() * clean.dims()));
  AdSearcher searcher(db);
  IGridIndex igrid(db);

  eval::TablePrinter table({"method", "precision@5"});
  const auto add = [&](const std::string& name, const Ranker& ranker) {
    table.AddRow({name, eval::Fmt(PrecisionAt(5, db, truth, ranker))});
  };

  add("kNN (Euclidean)", [&](std::span<const Value> q, size_t k) {
    return PidsOf(KnnScan(db, q, k).value().matches);
  });
  add("kNN (L1)", [&](std::span<const Value> q, size_t k) {
    return PidsOf(KnnScan(db, q, k, Metric::kManhattan).value().matches);
  });
  add("IGrid", [&](std::span<const Value> q, size_t k) {
    return PidsOf(igrid.Search(q, k).value().matches);
  });
  add("DPF (n=18)", [&](std::span<const Value> q, size_t k) {
    return PidsOf(DpfKnn(db, q, 18, k).value().matches);
  });
  add("k-n-match (n=18)", [&](std::span<const Value> q, size_t k) {
    return PidsOf(searcher.KnMatch(q, 18, k).value().matches);
  });
  add("k-n-match (n=36)", [&](std::span<const Value> q, size_t k) {
    return PidsOf(searcher.KnMatch(q, 36, k).value().matches);
  });
  add("freq. k-n-match [5,50]", [&](std::span<const Value> q, size_t k) {
    return PidsOf(searcher.FrequentKnMatch(q, 5, 50, k).value().matches);
  });
  table.Print(std::cout);

  std::printf("\nexpected shape: the matching-based rows sit at or above "
              "the aggregation-based rows (planted subspace matches are "
              "exactly what n-match uncovers).\n");
  return 0;
}

// Figure 11: performance of the disk-based AD algorithm on the
// texture-like dataset, as a function of k.
//
// (a) number of page accesses: AD touches 10-20% of the pages the
//     sequential scan reads;
// (b) response time: AD beats the scan because it reads only the
//     needed attributes and its forward searches are sequential.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader("Figure 11: disk-based AD algorithm vs k (texture)",
                     "Section 5.2.2, Figure 11(a)/(b); paper: AD at "
                     "10-20% of scan's page accesses and response time");

  Dataset db = datagen::MakeTextureLike();
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  DiskAdSearcher ad(columns);
  DiskScan scan(rows);

  const auto [n0, n1] = bench::DefaultNRange(db.dims());
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 21);
  std::printf("dataset %s (c=%zu, d=%zu), frequent k-n-match n in "
              "[%zu, %zu]\n\n",
              db.name().c_str(), db.size(), db.dims(), n0, n1);

  eval::TablePrinter table({"k", "AD pages", "scan pages", "AD time (s)",
                            "scan time (s)", "AD/scan pages %"});
  bool ad_always_fewer = true;
  for (const size_t k : {size_t{10}, size_t{20}, size_t{30}}) {
    uint64_t ad_pages = 0, scan_pages = 0;
    double ad_time = 0, scan_time = 0;
    for (const auto& q : queries) {
      auto cost = eval::MeasureQuery(
          &disk, [&] { ad.FrequentKnMatch(q, n0, n1, k).value(); });
      ad_pages += cost.total_pages();
      ad_time += cost.total_seconds();
      cost = eval::MeasureQuery(
          &disk, [&] { scan.FrequentKnMatch(q, n0, n1, k).value(); });
      scan_pages += cost.total_pages();
      scan_time += cost.total_seconds();
    }
    const double nq = static_cast<double>(queries.size());
    ad_always_fewer &= ad_pages < scan_pages;
    table.AddRow(
        {std::to_string(k), eval::Fmt(static_cast<double>(ad_pages) / nq, 0),
         eval::Fmt(static_cast<double>(scan_pages) / nq, 0),
         eval::Fmt(ad_time / nq), eval::Fmt(scan_time / nq),
         eval::Fmt(100.0 * static_cast<double>(ad_pages) /
                       static_cast<double>(scan_pages),
                   1)});
  }
  table.Print(std::cout);

  std::printf("\n[%s] AD reads fewer pages than the sequential scan at "
              "every k\n",
              ad_always_fewer ? "ok" : "FAIL");
  return 0;
}

// Figure 8: effect of the frequent k-n-match range [n0, n1] on
// accuracy, on the three high-dimensional UCI replicas (ionosphere,
// segmentation, wdbc).
//
// (a) accuracy vs n0 with n1 = d: the paper finds accuracy first rises
//     (tiny n only matches noise) then falls (range too small).
// (b) accuracy vs n1 with n0 = 4: accuracy decreases as n1 shrinks —
//     slowly at large n1 (those dimensions carry mostly dissimilarity),
//     rapidly at small n1.

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

double Accuracy(const Dataset& db, const AdSearcher& searcher, size_t n0,
                size_t n1) {
  eval::ClassStripConfig config;  // 100 queries, k = 20
  return eval::ClassStripAccuracy(
      db, config, eval::FrequentKnMatchMethod(searcher, n0, n1));
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 8: effects of n0 and n1 on accuracy",
                     "Section 5.2.1, Figure 8(a)/(b)");

  const datagen::UciName names[] = {datagen::UciName::kIonosphere,
                                    datagen::UciName::kSegmentation,
                                    datagen::UciName::kWdbc};

  for (const auto name : names) {
    Dataset db = datagen::MakeUciLike(name);
    AdSearcher searcher(db);
    const size_t d = db.dims();

    std::printf("--- %s ---\n",
                std::string(datagen::UciDisplayName(name)).c_str());
    eval::TablePrinter ta({"n0 (n1=d)", "accuracy"});
    for (size_t n0 = 1; n0 <= d; n0 += (d > 16 ? 4 : 2)) {
      ta.AddRow({std::to_string(n0), eval::Fmt(Accuracy(db, searcher, n0, d))});
    }
    ta.Print(std::cout);

    eval::TablePrinter tb({"n1 (n0=4)", "accuracy"});
    const size_t n0 = std::min<size_t>(4, d);
    for (size_t n1 = n0; n1 <= d; n1 += (d > 16 ? 4 : 2)) {
      tb.AddRow(
          {std::to_string(n1), eval::Fmt(Accuracy(db, searcher, n0, n1))});
    }
    tb.Print(std::cout);
    std::printf("\n");
  }

  std::printf("expected shape (paper): (a) rise-then-fall in n0; "
              "(b) accuracy falls slowly from n1 = d, faster at small "
              "n1.\n");
  return 0;
}

// Figure 13: frequent k-n-match (FKNMatchAD) vs IGrid vs sequential
// scan on 16-d uniform data.
//
// (a) response time vs k (data set size 100,000);
// (b) response time vs data set size (50k..300k, k = 20).
//
// Paper's finding: FKNMatchAD is the fastest and scales with both k and
// data size; IGrid's inverted lists are fragmented on disk, so its
// "2/d of the data" analysis understates its real cost.

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

struct Triple {
  double scan, ad, igrid;
};

Triple Measure(const Dataset& db, size_t k) {
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  IGridIndex igrid(db, IGridOptions{}, &disk);
  DiskAdSearcher ad(columns);
  DiskScan scan(rows);

  const auto [n0, n1] = bench::DefaultNRange(db.dims());
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 41);

  Triple t{0, 0, 0};
  for (const auto& q : queries) {
    t.scan += eval::MeasureQuery(&disk, [&] {
                scan.FrequentKnMatch(q, n0, n1, k).value();
              }).total_seconds();
    t.ad += eval::MeasureQuery(&disk, [&] {
              ad.FrequentKnMatch(q, n0, n1, k).value();
            }).total_seconds();
    t.igrid += eval::MeasureQuery(&disk, [&] {
                 igrid.Search(q, k).value();
               }).total_seconds();
  }
  const double nq = static_cast<double>(queries.size());
  return Triple{t.scan / nq, t.ad / nq, t.igrid / nq};
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 13: FKNMatchAD vs IGrid vs scan (uniform 16-d)",
      "Section 5.2.3, Figure 13(a)/(b)");

  std::printf("--- (a) response time vs k, c = 100,000 ---\n");
  {
    Dataset db = datagen::MakeUniform(100000, 16, 103);
    eval::TablePrinter table(
        {"k", "scan (s)", "AD (s)", "IGrid (s)", "AD fastest?"});
    for (const size_t k : {size_t{10}, size_t{20}, size_t{30}, size_t{40}}) {
      const Triple t = Measure(db, k);
      table.AddRow({std::to_string(k), eval::Fmt(t.scan), eval::Fmt(t.ad),
                    eval::Fmt(t.igrid),
                    (t.ad < t.scan && t.ad < t.igrid) ? "yes" : "no"});
    }
    table.Print(std::cout);
  }

  std::printf("\n--- (b) response time vs data set size, k = 20 ---\n");
  {
    eval::TablePrinter table({"size (thousand)", "scan (s)", "AD (s)",
                              "IGrid (s)", "AD fastest?"});
    for (const size_t thousands : {50, 100, 200, 300}) {
      Dataset db = datagen::MakeUniform(thousands * 1000, 16,
                                        200 + thousands);
      const Triple t = Measure(db, 20);
      table.AddRow({std::to_string(thousands), eval::Fmt(t.scan),
                    eval::Fmt(t.ad), eval::Fmt(t.igrid),
                    (t.ad < t.scan && t.ad < t.igrid) ? "yes" : "no"});
    }
    table.Print(std::cout);
  }

  std::printf("\nexpected shape (paper): AD below both competitors at "
              "every k and size, scaling roughly linearly with size.\n");
  return 0;
}

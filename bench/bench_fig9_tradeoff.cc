// Figure 9: the accuracy/performance trade-off of the AD algorithm.
//
// (a) % of attributes retrieved by FKNMatchAD as a function of n1
//     (n0 = 4, k = 20), on the three high-dimensional UCI replicas:
//     retrieval grows with n1, slowly at first.
// (b) accuracy vs % attributes retrieved on the ionosphere replica,
//     with IGrid's (accuracy, attributes) point for reference: the AD
//     curve should pass IGrid's accuracy while retrieving a small
//     fraction of the attributes (paper: <15%).

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

struct SweepPoint {
  size_t n1;
  double accuracy;
  double attr_fraction;
};

std::vector<SweepPoint> Sweep(const Dataset& db, const AdSearcher& searcher,
                              size_t step) {
  std::vector<SweepPoint> points;
  const size_t d = db.dims();
  const size_t n0 = std::min<size_t>(4, d);
  for (size_t n1 = n0; n1 <= d; n1 += step) {
    eval::ClassStripConfig config;
    const double acc = eval::ClassStripAccuracy(
        db, config, eval::FrequentKnMatchMethod(searcher, n0, n1));
    // Average attribute retrieval over sampled queries.
    uint64_t attrs = 0;
    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 31);
    for (const auto& q : queries) {
      attrs += searcher.FrequentKnMatch(q, n0, n1, 20)
                   .value()
                   .attributes_retrieved;
    }
    const double fraction =
        static_cast<double>(attrs) /
        (static_cast<double>(queries.size()) *
         static_cast<double>(db.size()) * static_cast<double>(d));
    points.push_back(SweepPoint{n1, acc, fraction});
  }
  return points;
}

}  // namespace

int main() {
  bench::PrintHeader("Figure 9: accuracy vs attributes retrieved (AD)",
                     "Section 5.2.1, Figure 9(a)/(b)");

  const datagen::UciName names[] = {datagen::UciName::kIonosphere,
                                    datagen::UciName::kSegmentation,
                                    datagen::UciName::kWdbc};

  std::printf("--- (a) attributes retrieved (%%) vs n1, n0 = 4, k = 20 ---\n");
  for (const auto name : names) {
    Dataset db = datagen::MakeUciLike(name);
    AdSearcher searcher(db);
    std::printf("%s:\n", std::string(datagen::UciDisplayName(name)).c_str());
    eval::TablePrinter table({"n1", "attrs retrieved %", "accuracy"});
    for (const SweepPoint& p :
         Sweep(db, searcher, db.dims() > 16 ? 4 : 2)) {
      table.AddRow({std::to_string(p.n1),
                    eval::Fmt(100 * p.attr_fraction, 1),
                    eval::Fmt(p.accuracy)});
    }
    table.Print(std::cout);
  }

  std::printf("\n--- (b) accuracy vs retrieval on ionosphere-like, with "
              "IGrid reference ---\n");
  Dataset iono = datagen::MakeUciLike(datagen::UciName::kIonosphere);
  AdSearcher searcher(iono);
  IGridIndex igrid(iono);
  eval::ClassStripConfig config;
  const double igrid_acc =
      eval::ClassStripAccuracy(iono, config, eval::IGridMethod(igrid));

  double ad_fraction_at_igrid_acc = 1.0;
  for (const SweepPoint& p : Sweep(iono, searcher, 2)) {
    if (p.accuracy >= igrid_acc) {
      ad_fraction_at_igrid_acc =
          std::min(ad_fraction_at_igrid_acc, p.attr_fraction);
    }
  }
  std::printf("IGrid accuracy: %s\n", eval::Fmt(igrid_acc).c_str());
  if (ad_fraction_at_igrid_acc < 1.0) {
    std::printf("AD reaches IGrid's accuracy retrieving %.1f%% of "
                "attributes (paper: <15%%)\n",
                100 * ad_fraction_at_igrid_acc);
    std::printf("[%s] AD matches IGrid's accuracy with a small fraction of "
                "the attributes\n",
                ad_fraction_at_igrid_acc < 0.5 ? "ok" : "FAIL");
  } else {
    std::printf("note: AD sweep did not straddle IGrid's accuracy on this "
                "replica\n");
  }
  return 0;
}

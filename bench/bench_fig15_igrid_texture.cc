// Figure 15: comparison with IGrid on the (replica) texture dataset.
//
// (a) response time vs n1 for scan / FKNMatchAD / IGrid (IGrid and the
//     scan do not depend on n1): the paper finds FKNMatchAD beats both
//     even at n1 = d = 16;
// (b) % of attributes retrieved by AD vs n1: thanks to the data's high
//     skew, only ~25% of the attributes are retrieved even at n1 = 16.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader("Figure 15: comparison with IGrid on texture data",
                     "Section 5.2.3, Figure 15(a)/(b)");

  Dataset db = datagen::MakeTextureLike();
  DiskSimulator disk;
  RowStore rows(db, &disk);
  ColumnStore columns(db, &disk);
  IGridIndex igrid(db, IGridOptions{}, &disk);
  DiskAdSearcher ad(columns);
  DiskScan scan(rows);

  constexpr size_t kK = 20;
  constexpr size_t kN0 = 4;
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig, 61);
  const double nq = static_cast<double>(queries.size());

  double t_scan = 0, t_igrid = 0;
  for (const auto& q : queries) {
    t_scan += eval::MeasureQuery(&disk, [&] {
                scan.FrequentKnMatch(q, kN0, 8, kK).value();
              }).total_seconds();
    t_igrid += eval::MeasureQuery(&disk, [&] {
                 igrid.Search(q, kK).value();
               }).total_seconds();
  }
  t_scan /= nq;
  t_igrid /= nq;
  std::printf("scan: %s s   IGrid: %s s   (independent of n1)\n\n",
              eval::Fmt(t_scan).c_str(), eval::Fmt(t_igrid).c_str());

  eval::TablePrinter table({"n1", "AD time (s)", "AD attrs %",
                            "AD fastest?"});
  bool fastest_at_full_d = false;
  for (size_t n1 = 6; n1 <= db.dims(); n1 += 2) {
    double t_ad = 0;
    uint64_t attrs = 0;
    for (const auto& q : queries) {
      auto cost = eval::MeasureQuery(&disk, [&] {
        attrs += ad.FrequentKnMatch(q, kN0, n1, kK)
                     .value()
                     .attributes_retrieved;
      });
      t_ad += cost.total_seconds();
    }
    t_ad /= nq;
    const double attr_pct =
        100.0 * static_cast<double>(attrs) /
        (nq * static_cast<double>(db.size()) *
         static_cast<double>(db.dims()));
    const bool fastest = t_ad < t_scan && t_ad < t_igrid;
    if (n1 == db.dims()) fastest_at_full_d = fastest;
    table.AddRow({std::to_string(n1), eval::Fmt(t_ad),
                  eval::Fmt(attr_pct, 1), fastest ? "yes" : "no"});
  }
  table.Print(std::cout);

  std::printf("\n[%s] FKNMatchAD beats scan and IGrid even at n1 = d "
              "(paper: yes, ~25%% of attributes retrieved due to skew)\n",
              fastest_at_full_d ? "ok" : "FAIL");
  return 0;
}

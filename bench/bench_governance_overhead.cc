// Governance overhead: the in-memory AD k-n-match hot path timed with
// no QueryContext against the same queries governed by a deadline,
// budgets, and a cancel token that never trip. The governance layer's
// contract is <2% overhead on this path — checks are amortized over
// pop strides, so the per-pop cost is a countdown decrement.
//
// Methodology matches bench_obs_overhead.cc: on a noisy single-core
// host coarse A/B passes drift by more than the effect measured, so
// the two modes are interleaved per query with the order alternating
// on the query index, and each mode accumulates its total across all
// rounds. Results land in BENCH_governance_overhead.json and on stdout
// as `overhead_governed_percent=...` for scripts/check_bench_drift.sh.
//
// Usage: bench_governance_overhead [queries] [rounds] [cardinality]
//        [dims] (defaults 48, 10, 40000, 16)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "knmatch/core/ad_scratch.h"

namespace {

using namespace knmatch;

constexpr size_t kN = 8;
constexpr size_t kK = 10;

enum Mode { kUngoverned = 0, kGoverned = 1 };
constexpr size_t kNumModes = 2;
const char* kModeNames[kNumModes] = {"ungoverned", "governed (no trip)"};

// Runs one query in one mode, adds its pids to *checksum (the answers
// must be mode-independent, and the sum keeps the call from being
// optimized away), and returns elapsed seconds.
double TimeOne(const AdSearcher& searcher, const std::vector<Value>& query,
               internal::AdScratch* scratch, QueryContext* ctx,
               uint64_t* checksum) {
  if (ctx != nullptr) ctx->Rearm();
  const auto start = std::chrono::steady_clock::now();
  auto r = searcher.KnMatch(query, kN, kK, {}, scratch, ctx);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  for (const Neighbor& nb : r.value().matches) *checksum += nb.pid;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace knmatch;
  const size_t num_queries =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const size_t cardinality =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 40000;
  const size_t dims = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 16;

  bench::PrintHeader(
      "Governance overhead on the in-memory AD hot path",
      "no paper figure; the governance layer's <2% overhead contract");
  std::printf("dataset: uniform %zu x %zu | queries: %zu | rounds: %zu\n\n",
              cardinality, dims, num_queries, rounds);

  const Dataset db = datagen::MakeUniform(cardinality, dims, 20260807);
  const AdSearcher searcher(db);
  const auto queries = bench::SampleQueries(db, num_queries, 99);
  internal::AdScratch scratch;

  // Full governance surface, none of it trips: a generous deadline, all
  // three budgets set far above the workload, and a live cancel token.
  QueryContext ctx;
  ctx.set_deadline_in_ms(3.6e6);  // one hour
  ctx.budgets().max_attributes = ~uint64_t{0} >> 1;
  ctx.budgets().max_pages = ~uint64_t{0} >> 1;
  ctx.budgets().max_scratch_bytes = ~size_t{0} >> 1;
  ctx.set_cancel(std::make_shared<std::atomic<bool>>(false));

  // Warm-up pass: faults the sorted columns in and sizes the scratch,
  // and records the reference checksum for one full pass.
  uint64_t reference = 0;
  for (const auto& q : queries) {
    TimeOne(searcher, q, &scratch, nullptr, &reference);
  }

  double totals[kNumModes] = {0, 0};
  uint64_t checksums[kNumModes] = {0, 0};
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      // Alternate which mode runs first so cache-warming position bias
      // cancels across the pass.
      const bool governed_first = (qi + round) % 2 == 0;
      for (int j = 0; j < 2; ++j) {
        const Mode mode = (j == 0) == governed_first ? kGoverned
                                                     : kUngoverned;
        totals[mode] += TimeOne(searcher, queries[qi], &scratch,
                                mode == kGoverned ? &ctx : nullptr,
                                &checksums[mode]);
      }
    }
  }

  for (size_t m = 0; m < kNumModes; ++m) {
    if (checksums[m] != reference * rounds) {
      std::fprintf(stderr, "checksum drift in mode '%s'\n", kModeNames[m]);
      return 1;
    }
  }

  const double overhead = (totals[kGoverned] - totals[kUngoverned]) /
                          totals[kUngoverned] * 100.0;
  const double executions = static_cast<double>(num_queries * rounds);

  std::printf("%-20s %10.4fs total   %8.1f q/s\n", kModeNames[kUngoverned],
              totals[kUngoverned], executions / totals[kUngoverned]);
  std::printf("%-20s %10.4fs total   %8.1f q/s   overhead %+.2f%%\n\n",
              kModeNames[kGoverned], totals[kGoverned],
              executions / totals[kGoverned], overhead);

  // Machine-readable: one line for the drift gate, one JSON for the
  // perf trajectory.
  std::printf("overhead_governed_percent=%.3f\n", overhead);

  std::FILE* json = std::fopen("BENCH_governance_overhead.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_governance_overhead.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"governance_overhead\",\n"
               "  \"dataset\": {\"kind\": \"uniform\", \"cardinality\": "
               "%zu, \"dims\": %zu},\n"
               "  \"queries\": %zu,\n  \"rounds\": %zu,\n"
               "  \"ungoverned_seconds\": %.6f,\n"
               "  \"governed_seconds\": %.6f,\n"
               "  \"overhead_governed_percent\": %.3f\n}\n",
               cardinality, dims, num_queries, rounds, totals[kUngoverned],
               totals[kGoverned], overhead);
  std::fclose(json);
  std::printf("wrote BENCH_governance_overhead.json\n");
  return 0;
}

// Micro-benchmarks (google-benchmark): CPU costs of the core building
// blocks, plus ablations for design choices called out in DESIGN.md
// (AD vs naive scan at several selectivities; sorted-column build; VA
// quantization; top-k maintenance).

#include <benchmark/benchmark.h>

#include "knmatch.h"

namespace {

using namespace knmatch;

const Dataset& SharedUniform() {
  static const Dataset* db =
      new Dataset(datagen::MakeUniform(20000, 16, 777));
  return *db;
}

const AdSearcher& SharedSearcher() {
  static const AdSearcher* searcher = new AdSearcher(SharedUniform());
  return *searcher;
}

std::vector<Value> QueryFor(const Dataset& db, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> q(db.dims());
  for (Value& v : q) v = rng.Uniform01();
  return q;
}

void BM_SortedColumnsBuild(benchmark::State& state) {
  const Dataset db = datagen::MakeUniform(
      static_cast<size_t>(state.range(0)), 16, 77);
  for (auto _ : state) {
    SortedColumns columns(db);
    benchmark::DoNotOptimize(columns);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 16);
}
BENCHMARK(BM_SortedColumnsBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_NaiveKnMatch(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  const auto q = QueryFor(db, 1);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnMatchNaive(db, q, n, 10));
  }
}
BENCHMARK(BM_NaiveKnMatch)->Arg(2)->Arg(8)->Arg(16);

void BM_AdKnMatch(benchmark::State& state) {
  const AdSearcher& searcher = SharedSearcher();
  const auto q = QueryFor(SharedUniform(), 1);
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.KnMatch(q, n, 10));
  }
}
BENCHMARK(BM_AdKnMatch)->Arg(2)->Arg(8)->Arg(16);

void BM_AdFrequentKnMatch(benchmark::State& state) {
  const AdSearcher& searcher = SharedSearcher();
  const auto q = QueryFor(SharedUniform(), 2);
  const size_t n1 = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(searcher.FrequentKnMatch(q, 4, n1, 20));
  }
}
BENCHMARK(BM_AdFrequentKnMatch)->Arg(8)->Arg(12)->Arg(16);

void BM_NaiveFrequentKnMatch(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  const auto q = QueryFor(db, 2);
  const size_t n1 = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FrequentKnMatchNaive(db, q, 4, n1, 20));
  }
}
BENCHMARK(BM_NaiveFrequentKnMatch)->Arg(8)->Arg(16);

void BM_NMatchDifference(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  const auto q = QueryFor(db, 3);
  size_t pid = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        NMatchDifference(db.point(pid % db.size()), q, 8));
    ++pid;
  }
}
BENCHMARK(BM_NMatchDifference);

void BM_VaFileBuild(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  for (auto _ : state) {
    DiskSimulator disk;
    VaFile va(db, &disk, static_cast<unsigned>(state.range(0)));
    benchmark::DoNotOptimize(va);
  }
}
BENCHMARK(BM_VaFileBuild)->Arg(4)->Arg(8);

void BM_BoundedTopK(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> scores(100000);
  for (double& s : scores) s = rng.Uniform01();
  for (auto _ : state) {
    BoundedTopK<uint32_t, double, uint32_t> top(20);
    for (uint32_t i = 0; i < scores.size(); ++i) {
      top.Offer(scores[i], i, i);
    }
    benchmark::DoNotOptimize(top);
  }
  state.SetItemsProcessed(state.iterations() * scores.size());
}
BENCHMARK(BM_BoundedTopK);

void BM_IGridSearch(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  static const IGridIndex* igrid = new IGridIndex(SharedUniform());
  const auto q = QueryFor(db, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(igrid->Search(q, 20));
  }
}
BENCHMARK(BM_IGridSearch);

void BM_NMatchSelfJoin(benchmark::State& state) {
  const Dataset db = datagen::MakeUniform(2000, 8, 778);
  const double eps = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NMatchSelfJoin(db, 4, eps));
  }
}
BENCHMARK(BM_NMatchSelfJoin)->Arg(10)->Arg(50);

void BM_SelectivityEstimate(benchmark::State& state) {
  const Dataset& db = SharedUniform();
  static const eval::SelectivityEstimator* est =
      new eval::SelectivityEstimator(SharedUniform());
  const auto q = QueryFor(db, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->EstimateAdAttributeFraction(q, 8, 20));
  }
}
BENCHMARK(BM_SelectivityEstimate);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(779);
  for (auto _ : state) {
    state.PauseTiming();
    DiskSimulator disk;
    BPlusTree tree(&disk);
    state.ResumeTiming();
    for (PointId pid = 0; pid < 5000; ++pid) {
      tree.Insert(ColumnEntry{rng.Uniform01(), pid});
    }
    benchmark::DoNotOptimize(tree);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_BPlusTreeInsert);

void BM_KMeans(benchmark::State& state) {
  const Dataset db = datagen::MakeUniform(5000, 8, 780);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KMeans(db, 16, 7, 5));
  }
}
BENCHMARK(BM_KMeans);

}  // namespace

// Batch-query throughput: queries-per-second for sequential per-query
// execution vs the exec-layer batch API at several worker counts, on
// the 100k x 16 uniform dataset the scaling roadmap tracks. No paper
// figure corresponds to this — the paper measures per-query attribute
// retrievals; this measures the serving throughput the exec subsystem
// adds — so alongside the table it emits BENCH_throughput.json, giving
// later PRs a machine-readable perf trajectory to compare against.
//
// Usage: bench_throughput [queries] [cardinality] [dims]
//        (defaults 64, 100000, 16)
//
// Interpreting speedups: batch-at-T=1 vs sequential isolates the
// AdScratch arena (per-query O(c) allocation replaced by an O(1) epoch
// reset); higher T adds parallel fan-out, which needs physical cores —
// on a single-core host every T collapses to ~1x and only the arena
// win remains.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "knmatch/datagen/zipfian.h"

namespace {

using namespace knmatch;

double Seconds(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Workload {
  std::string name;
  // Runs the workload once over all queries, returning a checksum.
  // `threads` < 0 means sequential per-query calls.
  uint64_t (*run)(const SimilarityEngine&, const exec::BatchRequest&,
                  int threads);
};

uint64_t Checksum(const std::vector<KnMatchResult>& results) {
  uint64_t sum = 0;
  for (const auto& r : results) {
    for (const Neighbor& nb : r.matches) sum += nb.pid;
  }
  return sum;
}

uint64_t RunKnMatch(const SimilarityEngine& engine,
                    const exec::BatchRequest& request, int threads) {
  constexpr size_t kN = 8, kK = 10;
  if (threads < 0) {
    uint64_t sum = 0;
    for (const auto& q : request.queries) {
      auto r = engine.KnMatch(q, kN, kK);
      for (const Neighbor& nb : r.value().matches) sum += nb.pid;
    }
    return sum;
  }
  exec::BatchRequest req = request;
  req.options.threads = static_cast<size_t>(threads);
  // Scaling bench: measure the requested count even past the core count.
  req.options.allow_oversubscription = true;
  auto r = engine.KnMatchBatch(req, kN, kK);
  return Checksum(r.value().results);
}

uint64_t RunFrequent(const SimilarityEngine& engine,
                     const exec::BatchRequest& request, int threads) {
  constexpr size_t kN0 = 4, kN1 = 8, kK = 10;
  if (threads < 0) {
    uint64_t sum = 0;
    for (const auto& q : request.queries) {
      auto r = engine.FrequentKnMatch(q, kN0, kN1, kK);
      for (const Neighbor& nb : r.value().matches) sum += nb.pid;
    }
    return sum;
  }
  exec::BatchRequest req = request;
  req.options.threads = static_cast<size_t>(threads);
  // Scaling bench: measure the requested count even past the core count.
  req.options.allow_oversubscription = true;
  auto r = engine.FrequentKnMatchBatch(req, kN0, kN1, kK);
  uint64_t sum = 0;
  for (const auto& result : r.value().results) {
    for (const Neighbor& nb : result.matches) sum += nb.pid;
  }
  return sum;
}

uint64_t RunKnn(const SimilarityEngine& engine,
                const exec::BatchRequest& request, int threads) {
  constexpr size_t kK = 10;
  if (threads < 0) {
    uint64_t sum = 0;
    for (const auto& q : request.queries) {
      auto r = engine.Knn(q, kK);
      for (const Neighbor& nb : r.value().matches) sum += nb.pid;
    }
    return sum;
  }
  exec::BatchRequest req = request;
  req.options.threads = static_cast<size_t>(threads);
  // Scaling bench: measure the requested count even past the core count.
  req.options.allow_oversubscription = true;
  auto r = engine.KnnBatch(req, kK);
  return Checksum(r.value().results);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace knmatch;
  const size_t num_queries = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                      : 64;
  const size_t cardinality = argc > 2 ? std::strtoul(argv[2], nullptr, 10)
                                      : 100000;
  const size_t dims = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 16;

  bench::PrintHeader(
      "Batch-query throughput: sequential vs exec-layer fan-out",
      "no paper figure; the exec subsystem's serving-throughput goal");

  std::printf("dataset: uniform %zu x %zu | queries: %zu | hardware "
              "threads: %u\n\n",
              cardinality, dims, num_queries,
              std::thread::hardware_concurrency());

  SimilarityEngine engine(datagen::MakeUniform(cardinality, dims, 20260807));
  exec::BatchRequest request;
  request.queries =
      bench::SampleQueries(engine.dataset(), num_queries, 4242);

  const Workload workloads[] = {
      {"knmatch_n8_k10", RunKnMatch},
      {"fknmatch_n4_8_k10", RunFrequent},
      {"knn_k10", RunKnn},
  };
  const int thread_counts[] = {1, 2, 4, 8};

  std::FILE* json = std::fopen("BENCH_throughput.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_throughput.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"throughput\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"dataset\": {\"kind\": \"uniform\", \"cardinality\": "
               "%zu, \"dims\": %zu},\n"
               "  \"queries\": %zu,\n  \"workloads\": [",
               std::thread::hardware_concurrency(), cardinality, dims,
               num_queries);

  // Each configuration is timed kTimedPasses times and the fastest
  // pass is reported: the work is deterministic, so every slowdown is
  // external (scheduler preemption, frequency throttling — sizable and
  // one-sided on the shared 1-core hosts this runs on), and the
  // minimum is the standard estimator for the noise-free cost. Every
  // pass is still checksum-verified.
  constexpr int kTimedPasses = 5;

  bool first_workload = true;
  for (const Workload& w : workloads) {
    // Warm up: builds the sorted columns and faults the data in, so
    // the sequential pass is not charged index construction.
    const uint64_t reference = w.run(engine, request, -1);

    double seq_seconds = 0;
    for (int pass = 0; pass < kTimedPasses; ++pass) {
      auto start = std::chrono::steady_clock::now();
      const uint64_t seq_sum = w.run(engine, request, -1);
      const double elapsed = Seconds(start);
      if (pass == 0 || elapsed < seq_seconds) seq_seconds = elapsed;
      if (seq_sum != reference) {
        std::fprintf(stderr, "checksum drift in sequential run\n");
        return 1;
      }
    }
    const double seq_qps = num_queries / seq_seconds;

    std::printf("%-20s sequential: %8.1f q/s\n", w.name.c_str(), seq_qps);

    std::fprintf(json,
                 "%s\n    {\"name\": \"%s\", \"sequential_qps\": %.1f, "
                 "\"sequential_seconds\": %.4f, \"batch\": [",
                 first_workload ? "" : ",", w.name.c_str(), seq_qps,
                 seq_seconds);
    first_workload = false;

    bool first_t = true;
    for (const int t : thread_counts) {
      w.run(engine, request, t);  // warm the pool for this thread count
      double batch_seconds = 0;
      for (int pass = 0; pass < kTimedPasses; ++pass) {
        auto start = std::chrono::steady_clock::now();
        const uint64_t batch_sum = w.run(engine, request, t);
        const double elapsed = Seconds(start);
        if (pass == 0 || elapsed < batch_seconds) batch_seconds = elapsed;
        if (batch_sum != reference) {
          std::fprintf(stderr, "determinism violation at T=%d\n", t);
          return 1;
        }
      }
      const double qps = num_queries / batch_seconds;
      const double speedup = seq_seconds / batch_seconds;
      std::printf("%-20s batch T=%d:  %8.1f q/s  (%.2fx vs sequential, "
                  "checksum ok)\n",
                  "", t, qps, speedup);
      std::fprintf(json,
                   "%s\n      {\"threads\": %d, \"qps\": %.1f, "
                   "\"speedup_vs_sequential\": %.3f}",
                   first_t ? "" : ",", t, qps, speedup);
      first_t = false;
    }
    std::fprintf(json, "\n    ]}");
    std::printf("\n");
  }
  // zipfian_repeat: a skewed mix where a small pool of distinct queries
  // dominates — the shape the result cache is built for. Cold passes run
  // with the cache disabled; cached passes clear the cache first, so
  // every timed pass pays the population misses before serving repeats.
  // Field names deliberately differ from the uniform workloads: the QPS
  // drift gate tracks sequential_qps only, while check_bench_drift.sh
  // gates cached_qps/cold_qps separately.
  {
    datagen::ZipfianQueryMixSpec spec;
    // Fixed shape regardless of argv: the cache-speedup gate in
    // check_bench_drift.sh needs a stable repeat factor (512 draws
    // over 64 distinct), not one that shrinks with --queries.
    spec.pool_size = 64;
    spec.count = 512;
    spec.skew = 1.1;
    spec.seed = 515;
    const auto mix = datagen::MakeZipfianQueryMix(engine.dataset(), spec);

    constexpr size_t kN = 8, kK = 10;
    auto run_mix = [&engine, &mix]() {
      uint64_t sum = 0;
      for (const auto& q : mix) {
        auto r = engine.KnMatch(q, kN, kK);
        for (const Neighbor& nb : r.value().matches) sum += nb.pid;
      }
      return sum;
    };

    const uint64_t reference = run_mix();  // columns already warm; checksum
    double cold_seconds = 0;
    for (int pass = 0; pass < 3; ++pass) {
      auto start = std::chrono::steady_clock::now();
      const uint64_t sum = run_mix();
      const double elapsed = Seconds(start);
      if (pass == 0 || elapsed < cold_seconds) cold_seconds = elapsed;
      if (sum != reference) {
        std::fprintf(stderr, "checksum drift in zipfian cold run\n");
        return 1;
      }
    }
    const double cold_qps = mix.size() / cold_seconds;

    engine.EnableCache();
    double cached_seconds = 0;
    for (int pass = 0; pass < 3; ++pass) {
      engine.cache()->Clear();
      auto start = std::chrono::steady_clock::now();
      const uint64_t sum = run_mix();
      const double elapsed = Seconds(start);
      if (pass == 0 || elapsed < cached_seconds) cached_seconds = elapsed;
      if (sum != reference) {
        std::fprintf(stderr, "cached answers diverge on zipfian run\n");
        return 1;
      }
    }
    const auto stats = engine.cache()->Stats();
    const double hit_ratio =
        stats.hits + stats.misses > 0
            ? 100.0 * static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses)
            : 0.0;
    engine.DisableCache();
    const double cached_qps = mix.size() / cached_seconds;

    std::printf("%-20s cold:       %8.1f q/s\n", "zipfian_repeat",
                cold_qps);
    std::printf("%-20s cached:     %8.1f q/s  (%.2fx, %.1f%% hits, "
                "checksum ok)\n\n",
                "", cached_qps, cold_seconds / cached_seconds, hit_ratio);
    std::fprintf(json,
                 ",\n    {\"name\": \"zipfian_repeat\", \"pool\": %zu, "
                 "\"draws\": %zu, \"skew\": %.2f, \"cold_qps\": %.1f, "
                 "\"cached_qps\": %.1f, \"cache_speedup\": %.2f, "
                 "\"hit_ratio_percent\": %.1f}",
                 spec.pool_size, mix.size(), spec.skew, cold_qps,
                 cached_qps, cold_seconds / cached_seconds, hit_ratio);
  }

  // ingest_under_load: live-snapshot query throughput while one writer
  // streams WAL-logged inserts into the same engine. Answers shift as
  // epochs publish, so there is no cross-pass checksum; the lane's
  // field names (query_qps / ingest_ops_per_sec) keep it out of the
  // sequential-drift gate, which only tracks sequential_qps.
  {
    SimilarityEngine live_engine(
        datagen::MakeUniform(cardinality / 4, dims, 20260808));
    SimilarityEngine::IngestConfig ingest_config;
    ingest_config.group_commit_window = 8;
    if (Status s = live_engine.BeginIngest(ingest_config); !s.ok()) {
      std::fprintf(stderr, "BeginIngest failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    const auto live_queries =
        bench::SampleQueries(live_engine.dataset(), num_queries, 4242);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> ingested{0};
    std::thread writer([&live_engine, &stop, &ingested, dims] {
      Rng rng(77);
      std::vector<Value> coords(dims);
      while (!stop.load(std::memory_order_relaxed)) {
        for (auto& v : coords) v = rng.Uniform01();
        if (!live_engine.IngestPoint(coords).ok()) break;
        ingested.fetch_add(1, std::memory_order_relaxed);
      }
      (void)live_engine.FlushIngest();
    });

    constexpr size_t kN = 8, kK = 10;
    constexpr double kWindowSeconds = 1.0;
    uint64_t answered = 0;
    const auto start = std::chrono::steady_clock::now();
    while (Seconds(start) < kWindowSeconds) {
      for (const auto& q : live_queries) {
        auto r = live_engine.LiveKnMatch(q, kN, kK);
        if (!r.ok()) {
          std::fprintf(stderr, "LiveKnMatch failed under load: %s\n",
                       r.status().ToString().c_str());
          stop.store(true);
          writer.join();
          return 1;
        }
        ++answered;
      }
    }
    const double window = Seconds(start);
    stop.store(true);
    writer.join();

    const uint64_t ops = ingested.load();
    const WriteAheadLog::Stats wal = live_engine.live_index()->wal().stats();
    if (answered == 0 || ops == 0) {
      std::fprintf(stderr, "ingest_under_load made no progress "
                   "(%llu queries, %llu ops)\n",
                   static_cast<unsigned long long>(answered),
                   static_cast<unsigned long long>(ops));
      return 1;
    }
    const double query_qps = static_cast<double>(answered) / window;
    const double ops_per_sec = static_cast<double>(ops) / window;
    std::printf("%-20s queries:    %8.1f q/s  (under live writer)\n",
                "ingest_under_load", query_qps);
    std::printf("%-20s ingest:     %8.1f ops/s  (%llu WAL fsyncs, "
                "%zu live points)\n\n",
                "", ops_per_sec, static_cast<unsigned long long>(wal.fsyncs),
                live_engine.live_index()->live_size());
    std::fprintf(json,
                 ",\n    {\"name\": \"ingest_under_load\", "
                 "\"query_qps\": %.1f, \"ingest_ops_per_sec\": %.1f, "
                 "\"wal_fsyncs\": %llu, \"wal_appends\": %llu, "
                 "\"group_commit_window\": %zu, \"live_points\": %zu}",
                 query_qps, ops_per_sec,
                 static_cast<unsigned long long>(wal.fsyncs),
                 static_cast<unsigned long long>(wal.appends),
                 ingest_config.group_commit_window,
                 live_engine.live_index()->live_size());
    if (Status s = live_engine.EndIngest(); !s.ok()) {
      std::fprintf(stderr, "EndIngest failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // sharded_scatter_gather: router QPS across shard counts with replica
  // groups and hedging forced on (every warm dispatch duplicates to the
  // second replica — the lane measures the policy's worst-case cost,
  // not its latency win). Every pass is checksummed against the
  // unsharded engine: the scatter-gather merge is exact by contract.
  // Field names (sharded_qps / fanout_ms_mean / hedge_rate) keep the
  // lane out of the sequential-drift gate; check_bench_drift.sh gates
  // it on progress instead.
  {
    constexpr size_t kN = 8, kK = 10;
    uint64_t reference = 0;
    for (const auto& q : request.queries) {
      auto r = engine.KnMatch(q, kN, kK);
      for (const Neighbor& nb : r.value().matches) reference += nb.pid;
    }

    std::fprintf(json,
                 ",\n    {\"name\": \"sharded_scatter_gather\", "
                 "\"replicas\": 2, \"configs\": [");
    const size_t shard_counts[] = {1, 4, 16};
    bool first_config = true;
    for (const size_t shards : shard_counts) {
      shard::RouterOptions options;
      options.shards = shards;
      options.replicas = 2;
      options.hedge_threshold_ms = 1e-6;
      const shard::ShardRouter router(engine.dataset(), options);

      auto run_router = [&router, &request]() {
        uint64_t sum = 0;
        for (const auto& q : request.queries) {
          auto r = router.KnMatch(q, kN, kK);
          for (const Neighbor& nb : r.value().matches) sum += nb.pid;
        }
        return sum;
      };

      if (run_router() != reference) {  // warm + bit-identity check
        std::fprintf(stderr, "sharded answers diverge at S=%zu\n", shards);
        return 1;
      }
      const auto dispatch_before =
          obs::Cat().shard_dispatch_seconds->Snapshot();
      double best_seconds = 0;
      for (int pass = 0; pass < 3; ++pass) {
        auto start = std::chrono::steady_clock::now();
        const uint64_t sum = run_router();
        const double elapsed = Seconds(start);
        if (pass == 0 || elapsed < best_seconds) best_seconds = elapsed;
        if (sum != reference) {
          std::fprintf(stderr, "sharded checksum drift at S=%zu\n", shards);
          return 1;
        }
      }
      const auto dispatch_after =
          obs::Cat().shard_dispatch_seconds->Snapshot();

      const double qps = num_queries / best_seconds;
      const uint64_t dispatch_count =
          dispatch_after.count - dispatch_before.count;
      const double fanout_ms_mean =
          dispatch_count > 0
              ? 1e3 * static_cast<double>(dispatch_after.sum_raw -
                                          dispatch_before.sum_raw) *
                    dispatch_after.scale / static_cast<double>(dispatch_count)
              : 0.0;
      const shard::RouterStats stats = router.Stats();
      const double hedge_rate =
          stats.dispatches > 0
              ? static_cast<double>(stats.hedges) /
                    static_cast<double>(stats.dispatches)
              : 0.0;

      std::printf("%-20s S=%-2zu R=2:  %8.1f q/s  (%.3f ms/shard "
                  "dispatch, hedge rate %.2f, checksum ok)\n",
                  first_config ? "sharded_scatter" : "", shards, qps,
                  fanout_ms_mean, hedge_rate);
      std::fprintf(json,
                   "%s\n      {\"shards\": %zu, \"sharded_qps\": %.1f, "
                   "\"fanout_ms_mean\": %.4f, \"hedge_rate\": %.3f}",
                   first_config ? "" : ",", shards, qps, fanout_ms_mean,
                   hedge_rate);
      first_config = false;
    }
    std::fprintf(json, "\n    ]}");
    std::printf("\n");
  }

  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_throughput.json\n");
  return 0;
}

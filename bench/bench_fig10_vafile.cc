// Figure 10: performance of the VA-file based algorithm for frequent
// k-n-match on a 16-d uniform dataset (100,000 points) and the
// texture-like dataset (68,040 points).
//
// (a) number of points retrieved (refined) in phase 2, vs k;
// (b) response time of the VA-file algorithm vs the sequential scan.
//
// Paper's finding: ~10% of the points survive pruning, and the random
// accesses needed to refine them make the VA-file approach *slower*
// than the sequential scan — compression does not pay off for this
// query type.

#include <cstdio>

#include "bench_common.h"

namespace {

using namespace knmatch;

void RunDataset(const Dataset& db, uint64_t query_seed) {
  DiskSimulator disk;
  RowStore rows(db, &disk);
  VaFile va(db, &disk, 8);
  VaKnMatchSearcher va_search(va, rows);
  DiskScan scan(rows);

  const auto [n0, n1] = bench::DefaultNRange(db.dims());
  auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig,
                                      query_seed);

  std::printf("--- %s (c=%zu, d=%zu), n in [%zu, %zu] ---\n",
              db.name().c_str(), db.size(), db.dims(), n0, n1);
  eval::TablePrinter table({"k", "points refined", "refined %",
                            "VA-file time (s)", "scan time (s)"});
  for (const size_t k : {size_t{10}, size_t{20}, size_t{30}}) {
    uint64_t refined = 0;
    double va_time = 0, scan_time = 0;
    for (const auto& q : queries) {
      auto cost = eval::MeasureQuery(&disk, [&] {
        refined += va_search.FrequentKnMatch(q, n0, n1, k)
                       .value()
                       .points_refined;
      });
      va_time += cost.total_seconds();
      cost = eval::MeasureQuery(&disk, [&] {
        scan.FrequentKnMatch(q, n0, n1, k).value();
      });
      scan_time += cost.total_seconds();
    }
    const double avg_refined =
        static_cast<double>(refined) / static_cast<double>(queries.size());
    table.AddRow({std::to_string(k), eval::Fmt(avg_refined, 0),
                  eval::Fmt(100 * avg_refined /
                                static_cast<double>(db.size()),
                            1),
                  eval::Fmt(va_time / static_cast<double>(queries.size())),
                  eval::Fmt(scan_time / static_cast<double>(queries.size()))});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 10: VA-file based algorithm for frequent k-n-match",
      "Section 5.2.2, Figure 10(a)/(b); paper: ~10% refined, VA-file "
      "~2x slower than scan");

  RunDataset(datagen::MakeUniform(100000, 16, 101), 11);
  RunDataset(datagen::MakeTextureLike(), 12);

  std::printf("expected shape (paper): a sizable fraction of points "
              "survives phase 1; random refinement I/O makes the VA-file "
              "slower than the scan.\n");
  return 0;
}

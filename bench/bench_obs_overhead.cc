// Observability overhead: the in-memory AD k-n-match hot path timed
// with metrics enabled, with the runtime kill switch off, and with a
// per-query trace installed. The subsystem's contract is <2% overhead
// on this path when enabled and untraced (the compile-time
// KNMATCH_DISABLE_METRICS build is the true zero — this binary
// measures what the default build pays).
//
// Methodology for a noisy single-core host: coarse A/B passes do not
// work here — host noise (frequency scaling, neighbors) drifts by
// several percent over seconds, far above the effect being measured.
// Instead the three modes are interleaved *per query*: each query runs
// in all three modes microseconds apart, the mode order rotates with
// the query index (so cache-warming position bias cancels), and each
// mode accumulates its total across all queries and rounds. Paired
// that tightly, the drift divides out. Results land in
// BENCH_obs_overhead.json and on stdout as
// `overhead_enabled_percent=...` for scripts/check_bench_drift.sh.
//
// Usage: bench_obs_overhead [queries] [rounds] [cardinality] [dims]
//        (defaults 48, 10, 40000, 16)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "knmatch/core/ad_scratch.h"

namespace {

using namespace knmatch;

constexpr size_t kN = 8;
constexpr size_t kK = 10;

enum Mode { kDisabled = 0, kEnabled = 1, kTraced = 2 };
constexpr size_t kNumModes = 3;
const char* kModeNames[kNumModes] = {"kill switch off", "metrics enabled",
                                     "metrics + trace"};

// The three rotations of (disabled, enabled, traced): query q in round
// r uses kOrders[(q + r) % 3], so every mode runs first / second /
// third equally often.
constexpr Mode kOrders[3][kNumModes] = {
    {kDisabled, kEnabled, kTraced},
    {kEnabled, kTraced, kDisabled},
    {kTraced, kDisabled, kEnabled},
};

// Runs one query in one mode, adds its pids to *checksum (the answers
// must be mode-independent, and the sum keeps the call from being
// optimized away), and returns elapsed seconds.
double TimeOne(const AdSearcher& searcher, const std::vector<Value>& query,
               internal::AdScratch* scratch, Mode mode,
               uint64_t* checksum) {
  obs::SetEnabled(mode != kDisabled);
  obs::QueryTrace trace;
  std::optional<obs::TraceScope> scope;
  if (mode == kTraced) scope.emplace(&trace);
  const auto start = std::chrono::steady_clock::now();
  auto r = searcher.KnMatch(query, kN, kK, {}, scratch);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  for (const Neighbor& nb : r.value().matches) *checksum += nb.pid;
  return seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace knmatch;
  const size_t num_queries =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 48;
  const size_t rounds = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const size_t cardinality =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 40000;
  const size_t dims = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 16;

  bench::PrintHeader(
      "Observability overhead on the in-memory AD hot path",
      "no paper figure; the obs subsystem's <2% overhead contract");
  std::printf("dataset: uniform %zu x %zu | queries: %zu | rounds: %zu | "
              "metrics compiled %s\n\n",
              cardinality, dims, num_queries, rounds,
              obs::kMetricsCompiledIn ? "in" : "out");

  const Dataset db = datagen::MakeUniform(cardinality, dims, 20260807);
  const AdSearcher searcher(db);
  const auto queries = bench::SampleQueries(db, num_queries, 99);
  internal::AdScratch scratch;

  // Warm-up pass: faults the sorted columns in and sizes the scratch,
  // and records the reference checksum for one full pass.
  uint64_t reference = 0;
  for (const auto& q : queries) {
    TimeOne(searcher, q, &scratch, kEnabled, &reference);
  }

  double totals[kNumModes] = {0, 0, 0};
  uint64_t checksums[kNumModes] = {0, 0, 0};
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Mode* order = kOrders[(qi + round) % 3];
      for (size_t j = 0; j < kNumModes; ++j) {
        const Mode mode = order[j];
        totals[mode] +=
            TimeOne(searcher, queries[qi], &scratch, mode,
                    &checksums[mode]);
      }
    }
  }
  obs::SetEnabled(true);

  for (size_t m = 0; m < kNumModes; ++m) {
    if (checksums[m] != reference * rounds) {
      std::fprintf(stderr, "checksum drift in mode '%s'\n", kModeNames[m]);
      return 1;
    }
  }

  const double overhead_enabled =
      (totals[kEnabled] - totals[kDisabled]) / totals[kDisabled] * 100.0;
  const double overhead_traced =
      (totals[kTraced] - totals[kDisabled]) / totals[kDisabled] * 100.0;
  const double executions = static_cast<double>(num_queries * rounds);

  std::printf("%-22s %10.4fs total   %8.1f q/s\n", kModeNames[kDisabled],
              totals[kDisabled], executions / totals[kDisabled]);
  std::printf("%-22s %10.4fs total   %8.1f q/s   overhead %+.2f%%\n",
              kModeNames[kEnabled], totals[kEnabled],
              executions / totals[kEnabled], overhead_enabled);
  std::printf("%-22s %10.4fs total   %8.1f q/s   overhead %+.2f%%\n\n",
              kModeNames[kTraced], totals[kTraced],
              executions / totals[kTraced], overhead_traced);

  // Machine-readable: one line for the drift gate, one JSON for the
  // perf trajectory.
  std::printf("overhead_enabled_percent=%.3f\n", overhead_enabled);
  std::printf("overhead_traced_percent=%.3f\n", overhead_traced);

  std::FILE* json = std::fopen("BENCH_obs_overhead.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_obs_overhead.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"obs_overhead\",\n"
               "  \"dataset\": {\"kind\": \"uniform\", \"cardinality\": "
               "%zu, \"dims\": %zu},\n"
               "  \"queries\": %zu,\n  \"rounds\": %zu,\n"
               "  \"metrics_compiled_in\": %s,\n"
               "  \"disabled_seconds\": %.6f,\n"
               "  \"enabled_seconds\": %.6f,\n"
               "  \"traced_seconds\": %.6f,\n"
               "  \"overhead_enabled_percent\": %.3f,\n"
               "  \"overhead_traced_percent\": %.3f\n}\n",
               cardinality, dims, num_queries, rounds,
               obs::kMetricsCompiledIn ? "true" : "false",
               totals[kDisabled], totals[kEnabled], totals[kTraced],
               overhead_enabled, overhead_traced);
  std::fclose(json);
  std::printf("wrote BENCH_obs_overhead.json\n");
  return 0;
}

// Figure 14: effect of dimensionality (8 to 48) on the response time of
// scan, FKNMatchAD and IGrid, on uniform data (100,000 points).
//
// Paper's finding: FKNMatchAD outperforms both at every dimensionality.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace knmatch;
  bench::PrintHeader("Figure 14: effect of dimensionality",
                     "Section 5.2.3, Figure 14");

  eval::TablePrinter table({"d", "scan (s)", "AD (s)", "IGrid (s)",
                            "AD fastest?"});
  bool ad_always_fastest = true;
  for (const size_t d : {size_t{8}, size_t{16}, size_t{32}, size_t{48}}) {
    Dataset db = datagen::MakeUniform(100000, d, 300 + d);
    DiskSimulator disk;
    RowStore rows(db, &disk);
    ColumnStore columns(db, &disk);
    IGridIndex igrid(db, IGridOptions{}, &disk);
    DiskAdSearcher ad(columns);
    DiskScan scan(rows);

    const auto [n0, n1] = bench::DefaultNRange(d);
    auto queries = bench::SampleQueries(db, bench::kQueriesPerConfig,
                                        50 + d);
    double t_scan = 0, t_ad = 0, t_igrid = 0;
    for (const auto& q : queries) {
      t_scan += eval::MeasureQuery(&disk, [&] {
                  scan.FrequentKnMatch(q, n0, n1, 20).value();
                }).total_seconds();
      t_ad += eval::MeasureQuery(&disk, [&] {
                ad.FrequentKnMatch(q, n0, n1, 20).value();
              }).total_seconds();
      t_igrid += eval::MeasureQuery(&disk, [&] {
                   igrid.Search(q, 20).value();
                 }).total_seconds();
    }
    const double nq = static_cast<double>(queries.size());
    t_scan /= nq;
    t_ad /= nq;
    t_igrid /= nq;
    const bool fastest = t_ad < t_scan && t_ad < t_igrid;
    ad_always_fastest &= fastest;
    table.AddRow({std::to_string(d), eval::Fmt(t_scan), eval::Fmt(t_ad),
                  eval::Fmt(t_igrid), fastest ? "yes" : "no"});
  }
  table.Print(std::cout);
  std::printf("\n[%s] FKNMatchAD outperforms scan and IGrid at every "
              "dimensionality (paper, Fig. 14)\n",
              ad_always_fastest ? "ok" : "FAIL");
  return 0;
}

#ifndef KNMATCH_BENCH_BENCH_COMMON_H_
#define KNMATCH_BENCH_BENCH_COMMON_H_

// Shared plumbing for the table/figure reproduction binaries. Every
// binary prints (1) the paper's reported numbers where it states them,
// and (2) the numbers measured on this implementation's synthetic
// replicas, in the same units and layout as the paper's table/figure.

#include <cstdio>
#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "knmatch.h"

namespace knmatch::bench {

/// Queries per configuration. The paper averages over many queries; a
/// handful keeps the whole suite fast while smoothing noise.
inline constexpr size_t kQueriesPerConfig = 5;

/// Extracts query vectors (copies) for sampled dataset points.
inline std::vector<std::vector<Value>> SampleQueries(const Dataset& db,
                                                     size_t count,
                                                     uint64_t seed) {
  std::vector<std::vector<Value>> queries;
  for (const PointId pid : eval::SampleQueryPids(db, count, seed)) {
    auto p = db.point(pid);
    queries.emplace_back(p.begin(), p.end());
  }
  return queries;
}

/// The frequent-search n-range used by the efficiency experiments,
/// following Section 5.2.1's tuning: n0 = 4 (or less for tiny d), n1
/// around d/2.
inline std::pair<size_t, size_t> DefaultNRange(size_t dims) {
  const size_t n0 = std::min<size_t>(4, dims);
  const size_t n1 = std::max(n0, dims / 2);
  return {n0, n1};
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================="
              "=\n%s\n(reproduces %s)\n"
              "================================================================"
              "\n\n",
              title, paper_ref);
}

}  // namespace knmatch::bench

#endif  // KNMATCH_BENCH_BENCH_COMMON_H_

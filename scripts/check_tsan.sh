#!/usr/bin/env bash
# Builds the library and test suite under ThreadSanitizer and runs the
# exec-layer tests (thread pool, batch executor, scratch arenas, the
# engine's call_once builders). Any reported race fails the script —
# the batch executor's contract is zero races.
#
# Usage: scripts/check_tsan.sh            (build dir: build-tsan)
#        BUILD_DIR=/tmp/tsan scripts/check_tsan.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DKNMATCH_SANITIZE=thread
cmake --build "$BUILD_DIR" --target knmatch_tests -j"$(nproc)"

# halt_on_error turns the first race into a test failure instead of a
# warning; the filter covers every test that touches the exec layer.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  "$BUILD_DIR"/tests/knmatch_tests \
  --gtest_filter='ThreadPool*:AdCursorHeap*:AdKernel*:AdScratch*:Batch*:EngineConcurrency*:Obs*:Governance*:Cache*:Shard*'

# The live-ingest reader/writer soak: N snapshot-pinning query threads
# race one WAL-committing writer for KNMATCH_SOAK_MS (longer here than
# the default ctest run — the soak is the TSan gate for the epoch
# publish/pin protocol), with every sampled answer differentially
# checked against a quiesced mirror.
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  KNMATCH_SOAK_MS=${KNMATCH_SOAK_MS:-10000} \
  "$BUILD_DIR"/tests/knmatch_tests \
  --gtest_filter='IngestSoak*:LiveColumnIndex*'

echo "TSan: exec-layer tests passed with zero reported races"

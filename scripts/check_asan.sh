#!/usr/bin/env bash
# Builds the library and test suite under AddressSanitizer and runs the
# fault-tolerance tests (page codec, fault injector, retrying reads,
# quarantine, engine degradation, the randomized soak) plus the storage
# and exec suites they lean on. The fault paths shuffle raw page bytes
# and latch errors mid-iteration — exactly where lifetime bugs hide, so
# any ASan report fails the script.
#
# Usage: scripts/check_asan.sh            (build dir: build-asan)
#        BUILD_DIR=/tmp/asan scripts/check_asan.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DKNMATCH_SANITIZE=address
cmake --build "$BUILD_DIR" --target knmatch_tests -j"$(nproc)"

# halt_on_error turns the first report into a test failure; the filter
# covers every suite that exercises the fault-injection read paths.
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  "$BUILD_DIR"/tests/knmatch_tests \
  --gtest_filter='PageCodec*:FaultInjector*:DiskSimulator*:PagedFile*:AdKernel*:BPlusTree*:Engine*:Batch*:FaultSoak*:Storage*:Obs*:Governance*:Cache*:Wal*:FreeSpace*:LiveColumnIndex*:CrashMatrix*:Ingest*:Shard*'

echo "ASan: fault-tolerance tests passed with zero reports"

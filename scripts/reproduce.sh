#!/usr/bin/env bash
# Full reproduction: configure, build, run all tests, run every
# table/figure bench, and leave the raw outputs at the repository root
# (test_output.txt, bench_output.txt) for comparison with
# EXPERIMENTS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt

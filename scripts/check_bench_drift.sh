#!/usr/bin/env bash
# Perf-drift gate: builds and runs the observability-overhead benchmark
# and the batch-throughput benchmark, fails if the metrics subsystem's
# measured overhead on the AD hot path exceeds the budget (2% by
# default), and appends one timestamped line per run to
# BENCH_history.jsonl so successive PRs leave a machine-readable perf
# trajectory.
#
# Usage: scripts/check_bench_drift.sh         (build dir: build)
#        BUILD_DIR=/tmp/b scripts/check_bench_drift.sh
#        OVERHEAD_BUDGET_PERCENT=3 scripts/check_bench_drift.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUDGET=${OVERHEAD_BUDGET_PERCENT:-2.0}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_obs_overhead bench_throughput \
  -j"$(nproc)"

# --- Gate: observability overhead on the in-memory AD hot path. ---
# The benchmark interleaves the instrumented and kill-switched modes
# per query (see bench/bench_obs_overhead.cc), so its ratio is robust
# to host noise; the budget is the subsystem's documented contract.
overhead_out=$("$BUILD_DIR"/bench/bench_obs_overhead)
printf '%s\n' "$overhead_out"
overhead=$(printf '%s\n' "$overhead_out" |
  awk -F= '/^overhead_enabled_percent=/{print $2}')
if [[ -z "$overhead" ]]; then
  echo "FAIL: bench_obs_overhead printed no overhead_enabled_percent" >&2
  exit 1
fi
if awk -v o="$overhead" -v b="$BUDGET" 'BEGIN{exit !(o > b)}'; then
  echo "FAIL: metrics overhead ${overhead}% exceeds budget ${BUDGET}%" >&2
  exit 1
fi
echo "OK: metrics overhead ${overhead}% within budget ${BUDGET}%"

# --- Trajectory: batch throughput (small config; the JSON is what
# matters, not the absolute numbers on this host). ---
"$BUILD_DIR"/bench/bench_throughput 32 50000 16

# Both benchmarks drop their JSON in the current directory (the repo
# root). Fold them into one history line.
stamp=$(date -Is)
{
  printf '{"timestamp": "%s", "obs_overhead": ' "$stamp"
  tr -d '\n' <BENCH_obs_overhead.json
  printf ', "throughput": '
  tr -d '\n' <BENCH_throughput.json
  printf '}\n'
} >>BENCH_history.jsonl
echo "appended run to BENCH_history.jsonl"

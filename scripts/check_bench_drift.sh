#!/usr/bin/env bash
# Perf-drift gate: builds and runs the observability-overhead benchmark,
# the governance-overhead benchmark, and the batch-throughput benchmark;
# fails if the metrics subsystem's or the governance layer's measured
# overhead on the AD hot path exceeds the budget (2% by default), and
# appends one timestamped line per run to BENCH_history.jsonl so
# successive PRs leave a machine-readable perf trajectory.
#
# Also gates sequential throughput: each workload's sequential QPS must
# stay within QPS_DRIFT_PERCENT (default 10) of the sequential_qps
# recorded in the committed BENCH_throughput.json. An intentional perf
# change trips the gate on purpose — rerun with a wider
# QPS_DRIFT_PERCENT and commit the refreshed BENCH_throughput.json,
# which becomes the next baseline.
#
# The cached lane gates the zipfian_repeat workload on its own ratio
# (cached_qps / cold_qps >= MIN_CACHE_SPEEDUP, default 5) rather than
# on drift: the ratio is an A/B on the same host seconds apart, so it
# stays meaningful on noisy hosts where absolute QPS wobbles.
#
# Usage: scripts/check_bench_drift.sh         (build dir: build)
#        BUILD_DIR=/tmp/b scripts/check_bench_drift.sh
#        OVERHEAD_BUDGET_PERCENT=3 scripts/check_bench_drift.sh
#        QPS_DRIFT_PERCENT=25 scripts/check_bench_drift.sh
#        MIN_CACHE_SPEEDUP=3 scripts/check_bench_drift.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
BUDGET=${OVERHEAD_BUDGET_PERCENT:-2.0}
QPS_DRIFT=${QPS_DRIFT_PERCENT:-10}
MIN_SPEEDUP=${MIN_CACHE_SPEEDUP:-5}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" --target bench_obs_overhead \
  bench_governance_overhead bench_throughput -j"$(nproc)"

# --- Gate: observability overhead on the in-memory AD hot path. ---
# The benchmark interleaves the instrumented and kill-switched modes
# per query (see bench/bench_obs_overhead.cc), so its ratio is robust
# to host noise; the budget is the subsystem's documented contract.
overhead_out=$("$BUILD_DIR"/bench/bench_obs_overhead)
printf '%s\n' "$overhead_out"
overhead=$(printf '%s\n' "$overhead_out" |
  awk -F= '/^overhead_enabled_percent=/{print $2}')
if [[ -z "$overhead" ]]; then
  echo "FAIL [lane obs_overhead]: bench_obs_overhead printed no" \
       "overhead_enabled_percent" >&2
  exit 1
fi
if awk -v o="$overhead" -v b="$BUDGET" 'BEGIN{exit !(o > b)}'; then
  echo "FAIL [lane obs_overhead]: metrics overhead ${overhead}%" \
       "exceeds budget ${BUDGET}%" >&2
  exit 1
fi
echo "OK: metrics overhead ${overhead}% within budget ${BUDGET}%"

# --- Gate: governance overhead on the in-memory AD hot path. ---
# Same interleaved A/B methodology (see bench/bench_governance_overhead
# .cc): each query runs ungoverned and under a full never-tripping
# QueryContext microseconds apart, so the ratio isolates the cost of
# the amortized governance checks themselves.
gov_out=$("$BUILD_DIR"/bench/bench_governance_overhead)
printf '%s\n' "$gov_out"
gov_overhead=$(printf '%s\n' "$gov_out" |
  awk -F= '/^overhead_governed_percent=/{print $2}')
if [[ -z "$gov_overhead" ]]; then
  echo "FAIL [lane governance_overhead]: bench_governance_overhead" \
       "printed no overhead_governed_percent" >&2
  exit 1
fi
if awk -v o="$gov_overhead" -v b="$BUDGET" 'BEGIN{exit !(o > b)}'; then
  echo "FAIL [lane governance_overhead]: governance overhead" \
       "${gov_overhead}% exceeds budget ${BUDGET}%" >&2
  exit 1
fi
echo "OK: governance overhead ${gov_overhead}% within budget ${BUDGET}%"

# --- Gate: sequential QPS drift on the batch-throughput workloads. ---
# The run below overwrites BENCH_throughput.json in place, so snapshot
# the committed baseline first.
baseline_json=$(mktemp)
trap 'rm -f "$baseline_json"' EXIT
have_baseline=0
if [[ -f BENCH_throughput.json ]]; then
  cp BENCH_throughput.json "$baseline_json"
  have_baseline=1
fi

# Emits "name sequential_qps" pairs; leans on the exact one-line-per-
# workload layout bench_throughput writes.
sequential_qps() {
  grep -o '"name": "[^"]*", "sequential_qps": [0-9.]*' "$1" |
    sed 's/"name": "\([^"]*\)", "sequential_qps": \([0-9.]*\)/\1 \2/'
}

"$BUILD_DIR"/bench/bench_throughput 32 50000 16

if [[ "$have_baseline" == 1 ]]; then
  drift_fail=0
  while read -r name base; do
    new=$(sequential_qps BENCH_throughput.json |
      awk -v n="$name" '$1 == n {print $2}')
    if [[ -z "$new" ]]; then
      echo "FAIL [lane $name]: workload missing from new" \
           "BENCH_throughput.json" >&2
      drift_fail=1
      continue
    fi
    drift=$(awk -v b="$base" -v n="$new" \
      'BEGIN{printf "%+.1f", (n - b) / b * 100}')
    if awk -v b="$base" -v n="$new" -v t="$QPS_DRIFT" \
        'BEGIN{d = (n - b) / b * 100; if (d < 0) d = -d; exit !(d > t)}'; then
      echo "FAIL [lane $name]: sequential QPS drifted ${drift}%" \
           "(${base} -> ${new}, budget +/-${QPS_DRIFT}%)" >&2
      drift_fail=1
    else
      echo "OK: $name sequential QPS ${base} -> ${new}" \
           "(${drift}%, budget +/-${QPS_DRIFT}%)"
    fi
  done < <(sequential_qps "$baseline_json")
  # A lane in the fresh run but absent from the recorded baseline is a
  # newly added workload, not a regression: record it and pass with a
  # warning — the refreshed BENCH_throughput.json becomes its baseline.
  while read -r name new; do
    if ! sequential_qps "$baseline_json" |
        awk -v n="$name" '$1 == n {found=1} END{exit !found}'; then
      echo "WARN [lane $name]: no recorded baseline; recording" \
           "${new} q/s as the new baseline and passing"
    fi
  done < <(sequential_qps BENCH_throughput.json)
  if [[ "$drift_fail" != 0 ]]; then
    exit 1
  fi
else
  echo "no recorded BENCH_throughput.json baseline; QPS gate skipped"
fi

# --- Gate: result-cache speedup on the zipfian_repeat workload. ---
# bench_throughput writes the cached lane with cold_qps/cached_qps
# field names, invisible to the sequential gate above by construction.
speedup=$(grep -o '"cache_speedup": [0-9.]*' BENCH_throughput.json |
  head -1 | awk '{print $2}')
if [[ -z "$speedup" ]]; then
  echo "FAIL [lane zipfian_repeat]: cache_speedup missing from" \
       "BENCH_throughput.json" >&2
  exit 1
fi
if awk -v s="$speedup" -v m="$MIN_SPEEDUP" 'BEGIN{exit !(s < m)}'; then
  echo "FAIL [lane zipfian_repeat]: cache speedup ${speedup}x below" \
       "minimum ${MIN_SPEEDUP}x" >&2
  exit 1
fi
echo "OK: zipfian_repeat cache speedup ${speedup}x (minimum ${MIN_SPEEDUP}x)"

# --- Gate: the live-ingest lane made progress on both sides. ---
# bench_throughput runs readers against published snapshots while one
# writer streams WAL transactions; zero throughput on either side
# means the publish/pin protocol stalled. Like the cached lane, its
# field names keep it out of the sequential-drift gate.
ingest_qps=$(grep -o '"name": "ingest_under_load", "query_qps": [0-9.]*'   BENCH_throughput.json | awk '{print $NF}')
ingest_ops=$(grep -o '"ingest_ops_per_sec": [0-9.]*'   BENCH_throughput.json | head -1 | awk '{print $2}')
if [[ -z "$ingest_qps" || -z "$ingest_ops" ]]; then
  echo "FAIL [lane ingest_under_load]: lane missing from" \
       "BENCH_throughput.json" >&2
  exit 1
fi
if awk -v q="$ingest_qps" -v o="$ingest_ops" \
    'BEGIN{exit !(q <= 0 || o <= 0)}'; then
  echo "FAIL [lane ingest_under_load]: no progress under load" \
       "(${ingest_qps} q/s, ${ingest_ops} ingest ops/s)" >&2
  exit 1
fi
echo "OK: ingest_under_load ${ingest_qps} q/s while ingesting" \
     "${ingest_ops} ops/s"

# --- Gate: the sharded scatter-gather lane answered at every shard
# count. bench_throughput checksums each router pass against the
# unsharded engine (the merge is exact by contract), so the gate here
# is progress: a zero or missing sharded_qps at any S means the fan-out
# stalled. Its field names (sharded_qps / fanout_ms_mean / hedge_rate)
# keep it out of the sequential-drift gate, like the ingest lane.
if ! grep -q '"name": "sharded_scatter_gather"' BENCH_throughput.json; then
  echo "FAIL [lane sharded_scatter_gather]: lane missing from" \
       "BENCH_throughput.json" >&2
  exit 1
fi
while read -r shards qps; do
  if awk -v q="$qps" 'BEGIN{exit !(q <= 0)}'; then
    echo "FAIL [lane sharded_scatter_gather]: no progress at" \
         "S=${shards} (${qps} q/s)" >&2
    exit 1
  fi
  echo "OK: sharded_scatter_gather S=${shards} answered at ${qps} q/s"
done < <(grep -o '"shards": [0-9]*, "sharded_qps": [0-9.]*' \
  BENCH_throughput.json |
  sed 's/"shards": \([0-9]*\), "sharded_qps": \([0-9.]*\)/\1 \2/')

# Both benchmarks drop their JSON in the current directory (the repo
# root). Fold them into one history line.
stamp=$(date -Is)
{
  printf '{"timestamp": "%s", "obs_overhead": ' "$stamp"
  tr -d '\n' <BENCH_obs_overhead.json
  printf ', "governance_overhead": '
  tr -d '\n' <BENCH_governance_overhead.json
  printf ', "throughput": '
  tr -d '\n' <BENCH_throughput.json
  printf '}\n'
} >>BENCH_history.jsonl
echo "appended run to BENCH_history.jsonl"

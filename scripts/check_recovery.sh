#!/usr/bin/env bash
# Crash-recovery gate: builds the test suite under AddressSanitizer and
# runs the WAL unit tests plus the kill-point crash matrix — every
# scripted crash (after WAL append, after commit append, mid-fsync,
# after fsync, mid page flush, after page flush, mid checkpoint fsync)
# must recover to a state bit-identical to either the pre- or the
# post-transaction answers of a quiesced mirror, and the recovered
# index must keep accepting writes. ASan catches lifetime bugs on the
# torn-page / partial-replay paths, where buffers are parsed after
# deliberate truncation.
#
# Invoked beside check_asan.sh / check_tsan.sh; shares the ASan build
# tree by default so consecutive runs only pay one sanitizer build.
#
# Usage: scripts/check_recovery.sh         (build dir: build-asan)
#        BUILD_DIR=/tmp/asan scripts/check_recovery.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-asan}

cmake -B "$BUILD_DIR" -S . -DKNMATCH_SANITIZE=address
cmake --build "$BUILD_DIR" --target knmatch_tests -j"$(nproc)"

# halt_on_error turns the first report into a test failure. The filter
# is the durability surface: WAL framing/group-commit/truncation,
# free-space reuse, the live index's differential tests, the crash
# matrix itself, and the engine-facade lifecycle around Recover().
ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  "$BUILD_DIR"/tests/knmatch_tests \
  --gtest_filter='Wal*:FreeSpace*:LiveColumnIndex*:CrashMatrix*:IngestObs*:EngineIngest*'

echo "recovery: crash matrix passed at every kill point with zero" \
     "ASan reports"
